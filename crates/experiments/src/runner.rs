//! Shared experiment loops: build a sampler, run it against a budget or a
//! sample-count target, estimate an aggregate, and average the relative error
//! over repetitions — the common core of Figures 6–11.

use crate::measures::Aggregate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wnw_access::{QueryBudget, SimulatedOsn, SocialNetwork};
use wnw_analytics::aggregates::{estimate_average, relative_error, SampleValue, WeightingScheme};
use wnw_core::{WalkEstimateConfig, WalkEstimateSampler, WalkEstimateVariant};
use wnw_graph::{metrics, Graph, NodeId};
use wnw_mcmc::burn_in::{BurnInConfig, ManyShortRunsSampler, OneLongRunSampler};
use wnw_mcmc::sampler::{collect_samples, Sampler, SamplerRunSummary};
use wnw_mcmc::{RandomWalkKind, TargetDistribution};
use wnw_runtime::WorkerPool;

use std::sync::{Arc, OnceLock};

/// The samplers compared in the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Traditional simple random walk with Geweke-monitored burn-in,
    /// many-short-runs style.
    Srw,
    /// Traditional Metropolis–Hastings random walk, many-short-runs style.
    Mhrw,
    /// One-long-run variant of SRW (Section 6.1 discussion).
    SrwOneLongRun,
    /// WALK-ESTIMATE with the given input walk and heuristic variant.
    WalkEstimate {
        /// The input random-walk design WE replaces.
        input: RandomWalkKind,
        /// Which variance-reduction heuristics are enabled.
        variant: WalkEstimateVariant,
    },
}

impl SamplerKind {
    /// Label used in result tables ("SRW", "WE(SRW)", "WE-Crawl(MHRW)", ...).
    pub fn label(&self) -> String {
        match self {
            SamplerKind::Srw => "SRW".to_string(),
            SamplerKind::Mhrw => "MHRW".to_string(),
            SamplerKind::SrwOneLongRun => "SRW-one-long-run".to_string(),
            SamplerKind::WalkEstimate { input, variant } => {
                format!("{}({})", variant.label(), input.name())
            }
        }
    }

    /// The target distribution of the emitted samples.
    pub fn target(&self) -> TargetDistribution {
        match self {
            SamplerKind::Srw | SamplerKind::SrwOneLongRun => TargetDistribution::DegreeProportional,
            SamplerKind::Mhrw => TargetDistribution::Uniform,
            SamplerKind::WalkEstimate { input, .. } => input.target(),
        }
    }

    /// The estimator weighting matching this sampler's target distribution.
    pub fn weighting(&self) -> WeightingScheme {
        match self.target() {
            TargetDistribution::Uniform => WeightingScheme::Uniform,
            TargetDistribution::DegreeProportional => WeightingScheme::InverseDegree,
        }
    }

    /// The WALK-ESTIMATE counterpart of a traditional sampler (used to pair
    /// curves in the figures). WE kinds return themselves.
    pub fn walk_estimate_counterpart(&self) -> SamplerKind {
        match self {
            SamplerKind::Srw | SamplerKind::SrwOneLongRun => SamplerKind::WalkEstimate {
                input: RandomWalkKind::Simple,
                variant: WalkEstimateVariant::Full,
            },
            SamplerKind::Mhrw => SamplerKind::WalkEstimate {
                input: RandomWalkKind::MetropolisHastings,
                variant: WalkEstimateVariant::Full,
            },
            we @ SamplerKind::WalkEstimate { .. } => *we,
        }
    }

    /// The engine [`SamplerSpec`](wnw_engine::SamplerSpec) equivalent of
    /// this kind, for dispatching pooled jobs through
    /// [`wnw_engine::Engine`].
    pub fn spec(&self, config: &WalkEstimateConfig) -> wnw_engine::SamplerSpec {
        use wnw_mcmc::burn_in::BurnInConfig;
        match *self {
            SamplerKind::Srw => wnw_engine::SamplerSpec::ManyShortRuns {
                input: RandomWalkKind::Simple,
                config: BurnInConfig::default(),
            },
            SamplerKind::Mhrw => wnw_engine::SamplerSpec::ManyShortRuns {
                input: RandomWalkKind::MetropolisHastings,
                config: BurnInConfig::default(),
            },
            SamplerKind::SrwOneLongRun => wnw_engine::SamplerSpec::OneLongRun {
                input: RandomWalkKind::Simple,
                config: BurnInConfig::default(),
            },
            SamplerKind::WalkEstimate { input, variant } => wnw_engine::SamplerSpec::WalkEstimate {
                input,
                config: config.with_variant(variant),
            },
        }
    }

    /// Builds the sampler over a prepared access layer.
    pub fn build(
        &self,
        osn: SimulatedOsn,
        diameter_estimate: usize,
        config: &WalkEstimateConfig,
        seed: u64,
    ) -> Box<dyn Sampler> {
        match *self {
            SamplerKind::Srw => Box::new(ManyShortRunsSampler::new(
                osn,
                RandomWalkKind::Simple,
                BurnInConfig::default(),
                seed,
            )),
            SamplerKind::Mhrw => Box::new(ManyShortRunsSampler::new(
                osn,
                RandomWalkKind::MetropolisHastings,
                BurnInConfig::default(),
                seed,
            )),
            SamplerKind::SrwOneLongRun => Box::new(OneLongRunSampler::new(
                osn,
                RandomWalkKind::Simple,
                BurnInConfig::default(),
                seed,
            )),
            SamplerKind::WalkEstimate { input, variant } => Box::new(
                WalkEstimateSampler::new(osn, input, config.with_variant(variant), seed)
                    .with_diameter_estimate(diameter_estimate),
            ),
        }
    }
}

/// Fixed experiment environment for one dataset: the graph, its estimated
/// diameter, the WE configuration in force, and the persistent worker pool
/// repetitions are fanned over.
#[derive(Debug, Clone)]
pub struct Workbench {
    /// The ground-truth graph behind the simulated access layer.
    pub graph: Graph,
    /// Diameter estimate fed to the WALK length policy.
    pub diameter: usize,
    /// WALK-ESTIMATE configuration (crawl depth etc.).
    pub config: WalkEstimateConfig,
    /// Width of the repetition-dispatch pool (see [`Workbench::pool`]).
    width: usize,
    /// The persistent [`WorkerPool`] independent repetitions are fanned
    /// over through the engine's [`scatter_map`](wnw_engine::scatter_map):
    /// spawned lazily on first use (so `new(...).with_threads(n)` never
    /// spawns a pool it immediately discards), then reused by every budget
    /// point of every figure — no per-call thread creation. Clones taken
    /// after the first use share the spawned pool. Results are averaged in
    /// repetition order, so they are identical at any pool width.
    pool: OnceLock<Arc<WorkerPool>>,
    /// When set, [`error_vs_cost`] and [`error_vs_samples`] run each
    /// repetition through the pooled engine — this many virtual walkers
    /// over one shared per-repetition cache, budgets split at the job level
    /// — instead of a single-walker sampler loop. Results stay
    /// deterministic for a fixed seed (the engine guarantee).
    pub pooled_walkers: Option<usize>,
}

impl Workbench {
    /// Prepares a workbench, estimating the diameter with a double sweep.
    /// Repetitions are dispatched over a pool as wide as the available
    /// hardware parallelism.
    pub fn new(graph: Graph, config: WalkEstimateConfig) -> Self {
        let diameter = metrics::double_sweep_diameter_estimate(&graph, 0xD1A)
            .unwrap_or(10)
            .max(2);
        Workbench {
            graph,
            diameter,
            config,
            width: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            pool: OnceLock::new(),
            pooled_walkers: None,
        }
    }

    /// Sets the repetition-dispatch pool width (1 = sequential: no worker
    /// threads at all). Any already-spawned pool is released; the next use
    /// spawns one at the new width.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.width = threads.max(1);
        self.pool = OnceLock::new();
        self
    }

    /// The repetition-dispatch pool's width.
    pub fn threads(&self) -> usize {
        self.width
    }

    /// The persistent pool repetitions are fanned over, spawned on first
    /// use (and shared by clones taken after that).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        self.pool
            .get_or_init(|| Arc::new(WorkerPool::new(self.width)))
    }

    /// Routes each repetition through the pooled engine with `walkers`
    /// virtual walkers (cooperative history, shared per-repetition cache).
    pub fn with_pooled_walkers(mut self, walkers: usize) -> Self {
        self.pooled_walkers = Some(walkers.max(1));
        self
    }

    fn osn(&self, budget: Option<u64>, start: NodeId) -> SimulatedOsn {
        let mut builder = SimulatedOsn::builder(self.graph.clone()).seed_node(start);
        if let Some(b) = budget {
            builder = builder.budget(QueryBudget(b));
        }
        builder.build()
    }

    fn random_start(&self, rng: &mut StdRng) -> NodeId {
        NodeId::new(rng.gen_range(0..self.graph.node_count()))
    }

    fn samples_to_values(
        &self,
        run: &SamplerRunSummary,
        aggregate: &Aggregate,
    ) -> Vec<SampleValue> {
        self.records_to_values(&run.samples, aggregate)
    }

    fn records_to_values(
        &self,
        samples: &[wnw_mcmc::sampler::SampleRecord],
        aggregate: &Aggregate,
    ) -> Vec<SampleValue> {
        samples
            .iter()
            .map(|s| SampleValue {
                node: s.node,
                value: aggregate.node_value(&self.graph, s.node),
                degree: self.graph.degree(s.node),
            })
            .collect()
    }
}

/// One repetition through the pooled engine: `walkers` virtual walkers over
/// one shared per-repetition cache (cooperative history), an optional query
/// budget split across the *active* walkers at the job level (see
/// [`SampleJob::budget_of`](wnw_engine::SampleJob::budget_of) — no share is
/// stranded on idle walkers, and the shares sum exactly to the budget,
/// matching the budget semantics every `SamplerKind` gets through
/// [`SamplerKind::spec`]). Runs on a width-1 (inline, zero-worker) engine
/// pool so it composes with the repetition-level
/// [`scatter_map`](wnw_engine::scatter_map) fan-out without oversubscription
/// — and without nesting rounds inside the workbench pool's own round,
/// which the pool forbids; the engine's determinism guarantee makes the
/// thread choice invisible to the result.
fn pooled_repetition(
    bench: &Workbench,
    kind: SamplerKind,
    walkers: usize,
    start: NodeId,
    budget: Option<u64>,
    samples: usize,
    seed: u64,
) -> wnw_engine::JobReport {
    let osn = bench.osn(None, start);
    let job = wnw_engine::SampleJob {
        spec: kind.spec(&bench.config),
        samples,
        walkers: walkers.max(1),
        seed,
        budget,
        history: wnw_engine::HistoryMode::Cooperative,
        diameter_estimate: Some(bench.diameter),
        start_node: None,
    };
    wnw_engine::Engine::with_threads(1)
        .run(&osn, &job)
        .expect("budget exhaustion ends walkers normally; the simulator raises nothing else")
}

/// One point of an error-vs-query-cost curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorVsCostPoint {
    /// Query budget given to the sampler.
    pub budget: u64,
    /// Query cost actually spent (averaged over repetitions).
    pub query_cost: f64,
    /// Relative error of the aggregate estimate (averaged over repetitions).
    pub relative_error: f64,
    /// Number of samples obtained (averaged over repetitions).
    pub samples: f64,
}

/// Runs `kind` against each budget and reports the averaged relative error of
/// `aggregate` (the building block of Figures 6–8, 9, 11a).
pub fn error_vs_cost(
    bench: &Workbench,
    kind: SamplerKind,
    aggregate: &Aggregate,
    budgets: &[u64],
    repetitions: usize,
    base_seed: u64,
) -> Vec<ErrorVsCostPoint> {
    let truth = aggregate.ground_truth(&bench.graph);
    let mut rng = StdRng::seed_from_u64(base_seed);
    budgets
        .iter()
        .map(|&budget| {
            // Start nodes come from the shared stream *before* the fan-out,
            // so the dispatch width never changes which repetition sees
            // which start.
            let starts: Vec<NodeId> = (0..repetitions)
                .map(|_| bench.random_start(&mut rng))
                .collect();
            let outcomes = wnw_engine::scatter_map(bench.pool(), starts, |rep, start| {
                let seed = base_seed ^ (rep as u64) << 8 ^ budget;
                if let Some(walkers) = bench.pooled_walkers {
                    // Pooled path: the budget is enforced as per-walker
                    // shares inside the engine, the x-axis cost is the
                    // pool's unique-node count (each node charged once,
                    // however many walkers touched it).
                    let report = pooled_repetition(
                        bench,
                        kind,
                        walkers,
                        start,
                        Some(budget),
                        usize::MAX >> 1,
                        seed,
                    );
                    let values = bench.records_to_values(&report.samples, aggregate);
                    let estimate = estimate_average(&values, kind.weighting());
                    return (
                        relative_error(estimate, truth),
                        report.query_cost() as f64,
                        report.len() as f64,
                    );
                }
                let osn = bench.osn(Some(budget), start);
                let mut sampler = kind.build(osn.clone(), bench.diameter, &bench.config, seed);
                let run = collect_samples(sampler.as_mut(), usize::MAX >> 1)
                    .expect("budget exhaustion is handled internally");
                let values = bench.samples_to_values(&run, aggregate);
                let estimate = estimate_average(&values, kind.weighting());
                (
                    relative_error(estimate, truth),
                    osn.query_cost() as f64,
                    run.len() as f64,
                )
            });
            let mut err_sum = 0.0;
            let mut cost_sum = 0.0;
            let mut sample_sum = 0.0;
            for (err, cost, samples) in outcomes {
                err_sum += err;
                cost_sum += cost;
                sample_sum += samples;
            }
            ErrorVsCostPoint {
                budget,
                query_cost: cost_sum / repetitions as f64,
                relative_error: err_sum / repetitions as f64,
                samples: sample_sum / repetitions as f64,
            }
        })
        .collect()
}

/// One point of an error-vs-sample-count curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorVsSamplesPoint {
    /// Number of samples requested.
    pub samples: usize,
    /// Relative error of the aggregate estimate (averaged over repetitions).
    pub relative_error: f64,
    /// Query cost spent to obtain the samples (averaged over repetitions).
    pub query_cost: f64,
}

/// Runs `kind` until it has produced each sample count and reports the
/// averaged relative error (Figures 10, 11b).
pub fn error_vs_samples(
    bench: &Workbench,
    kind: SamplerKind,
    aggregate: &Aggregate,
    sample_counts: &[usize],
    repetitions: usize,
    base_seed: u64,
) -> Vec<ErrorVsSamplesPoint> {
    let truth = aggregate.ground_truth(&bench.graph);
    let mut rng = StdRng::seed_from_u64(base_seed);
    sample_counts
        .iter()
        .map(|&count| {
            let starts: Vec<NodeId> = (0..repetitions)
                .map(|_| bench.random_start(&mut rng))
                .collect();
            let outcomes = wnw_engine::scatter_map(bench.pool(), starts, |rep, start| {
                let seed = base_seed ^ (rep as u64) << 8 ^ count as u64;
                if let Some(walkers) = bench.pooled_walkers {
                    let report = pooled_repetition(bench, kind, walkers, start, None, count, seed);
                    let values = bench.records_to_values(&report.samples, aggregate);
                    let estimate = estimate_average(&values, kind.weighting());
                    return (relative_error(estimate, truth), report.query_cost() as f64);
                }
                let osn = bench.osn(None, start);
                let mut sampler = kind.build(osn.clone(), bench.diameter, &bench.config, seed);
                let run = collect_samples(sampler.as_mut(), count)
                    .expect("unlimited budget cannot be exhausted");
                let values = bench.samples_to_values(&run, aggregate);
                let estimate = estimate_average(&values, kind.weighting());
                (relative_error(estimate, truth), osn.query_cost() as f64)
            });
            let mut err_sum = 0.0;
            let mut cost_sum = 0.0;
            for (err, cost) in outcomes {
                err_sum += err;
                cost_sum += cost;
            }
            ErrorVsSamplesPoint {
                samples: count,
                relative_error: err_sum / repetitions as f64,
                query_cost: cost_sum / repetitions as f64,
            }
        })
        .collect()
}

/// Average number of neighbor-list API calls ("walk steps") spent per sample
/// — the y-axis of Figure 5.
pub fn api_calls_per_sample(
    bench: &Workbench,
    kind: SamplerKind,
    samples: usize,
    repetitions: usize,
    base_seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(base_seed);
    let starts: Vec<NodeId> = (0..repetitions)
        .map(|_| bench.random_start(&mut rng))
        .collect();
    let per_rep = wnw_engine::scatter_map(bench.pool(), starts, |rep, start| {
        let osn = bench.osn(None, start);
        let mut sampler = kind.build(
            osn.clone(),
            bench.diameter,
            &bench.config,
            base_seed ^ rep as u64,
        );
        let run = collect_samples(sampler.as_mut(), samples).expect("unlimited budget");
        let calls = osn.query_stats().api_calls as f64;
        calls / run.len().max(1) as f64
    });
    per_rep.iter().sum::<f64>() / repetitions as f64
}

/// Draws `count` samples and returns the sampled node ids (used by the
/// exact-bias study of Figure 12 / Table 1).
pub fn draw_nodes(bench: &Workbench, kind: SamplerKind, count: usize, seed: u64) -> Vec<NodeId> {
    let osn = bench.osn(None, NodeId(0));
    let mut sampler = kind.build(osn, bench.diameter, &bench.config, seed);
    let run = collect_samples(sampler.as_mut(), count).expect("unlimited budget");
    run.nodes()
}

/// Draws `count` samples through the concurrent engine: a pool of `walkers`
/// virtual walkers over one shared cache, run on the workbench's own
/// persistent worker pool. Deterministic for a fixed seed at any pool width.
pub fn pooled_draw_nodes(
    bench: &Workbench,
    kind: SamplerKind,
    count: usize,
    walkers: usize,
    seed: u64,
) -> Vec<NodeId> {
    let osn = bench.osn(None, NodeId(0));
    let job = wnw_engine::SampleJob {
        spec: kind.spec(&bench.config),
        samples: count,
        walkers: walkers.max(1),
        seed,
        budget: None,
        history: wnw_engine::HistoryMode::Cooperative,
        diameter_estimate: Some(bench.diameter),
        start_node: None,
    };
    let report = wnw_engine::Engine::with_pool(Arc::clone(bench.pool()))
        .run(&osn, &job)
        .expect("unlimited budget");
    report.nodes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_graph::generators::random::barabasi_albert;

    fn bench() -> Workbench {
        let graph = barabasi_albert(300, 3, 5).unwrap();
        Workbench::new(graph, WalkEstimateConfig::default())
    }

    #[test]
    fn sampler_kind_labels_and_pairing() {
        assert_eq!(SamplerKind::Srw.label(), "SRW");
        assert_eq!(SamplerKind::Mhrw.label(), "MHRW");
        let we = SamplerKind::Srw.walk_estimate_counterpart();
        assert_eq!(we.label(), "WE(SRW)");
        assert_eq!(we.walk_estimate_counterpart(), we);
        assert_eq!(SamplerKind::Mhrw.weighting(), WeightingScheme::Uniform);
        assert_eq!(SamplerKind::Srw.weighting(), WeightingScheme::InverseDegree);
        assert_eq!(
            SamplerKind::SrwOneLongRun.target(),
            TargetDistribution::DegreeProportional
        );
    }

    #[test]
    fn error_vs_cost_produces_monotone_budgets() {
        let bench = bench();
        let points = error_vs_cost(
            &bench,
            SamplerKind::Srw,
            &Aggregate::Degree,
            &[60, 120, 180],
            2,
            7,
        );
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.query_cost <= p.budget as f64 + 1.0);
            assert!(p.relative_error.is_finite());
            assert!(p.samples >= 0.0);
        }
        assert!(points[2].samples >= points[0].samples);
    }

    #[test]
    fn error_vs_cost_works_for_walk_estimate() {
        let bench = bench();
        let kind = SamplerKind::WalkEstimate {
            input: RandomWalkKind::Simple,
            variant: WalkEstimateVariant::Full,
        };
        let points = error_vs_cost(&bench, kind, &Aggregate::Degree, &[80, 160], 2, 11);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.relative_error.is_finite()));
    }

    #[test]
    fn error_vs_samples_improves_with_more_samples() {
        let bench = bench();
        let points = error_vs_samples(
            &bench,
            SamplerKind::Mhrw,
            &Aggregate::Degree,
            &[5, 60],
            3,
            13,
        );
        assert_eq!(points.len(), 2);
        // Not guaranteed monotone for every seed, but the 12x sample count
        // should not be dramatically worse.
        assert!(points[1].relative_error <= points[0].relative_error * 2.0 + 0.05);
        assert!(points[1].query_cost > points[0].query_cost);
    }

    #[test]
    fn api_calls_per_sample_is_positive() {
        let bench = bench();
        let calls = api_calls_per_sample(&bench, SamplerKind::Srw, 3, 2, 17);
        assert!(calls > 1.0);
    }

    #[test]
    fn draw_nodes_returns_requested_count() {
        let bench = bench();
        let kind = SamplerKind::WalkEstimate {
            input: RandomWalkKind::MetropolisHastings,
            variant: WalkEstimateVariant::Full,
        };
        let nodes = draw_nodes(&bench, kind, 5, 19);
        assert_eq!(nodes.len(), 5);
        assert!(nodes.iter().all(|&v| bench.graph.contains(v)));
    }

    #[test]
    fn pooled_draw_nodes_is_thread_count_invariant() {
        let bench = bench();
        let kind = SamplerKind::WalkEstimate {
            input: RandomWalkKind::Simple,
            variant: WalkEstimateVariant::Full,
        };
        let sequential = pooled_draw_nodes(&bench.clone().with_threads(1), kind, 9, 3, 23);
        let parallel = pooled_draw_nodes(&bench.clone().with_threads(8), kind, 9, 3, 23);
        assert_eq!(sequential.len(), 9);
        assert_eq!(sequential, parallel);
        assert!(sequential.iter().all(|&v| bench.graph.contains(v)));
    }

    #[test]
    fn pooled_error_vs_cost_respects_budgets_and_is_invariant() {
        let bench = bench().with_pooled_walkers(2);
        for kind in [
            SamplerKind::Srw,
            SamplerKind::WalkEstimate {
                input: RandomWalkKind::Simple,
                variant: WalkEstimateVariant::Full,
            },
        ] {
            let points = error_vs_cost(&bench, kind, &Aggregate::Degree, &[80, 160], 2, 31);
            assert_eq!(points.len(), 2);
            for p in &points {
                // The pool's unique-node cost respects the job budget: each
                // walker's share is enforced on its own metered view, and
                // shared-cache hits can only push the pool cost *below* the
                // sum of shares.
                assert!(
                    p.query_cost <= p.budget as f64 + 1.0,
                    "{} pool cost {} exceeded budget {}",
                    kind.label(),
                    p.query_cost,
                    p.budget
                );
                assert!(p.relative_error.is_finite());
            }
        }
        // Thread-count invariance holds on the pooled path too.
        let seq = error_vs_cost(
            &bench.clone().with_threads(1),
            SamplerKind::Srw,
            &Aggregate::Degree,
            &[80, 160],
            3,
            37,
        );
        let par = error_vs_cost(
            &bench.clone().with_threads(8),
            SamplerKind::Srw,
            &Aggregate::Degree,
            &[80, 160],
            3,
            37,
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn pooled_error_vs_samples_reaches_requested_counts() {
        let bench = bench().with_pooled_walkers(2);
        let points = error_vs_samples(
            &bench,
            SamplerKind::WalkEstimate {
                input: RandomWalkKind::Simple,
                variant: WalkEstimateVariant::Full,
            },
            &Aggregate::Degree,
            &[4, 12],
            2,
            41,
        );
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.relative_error.is_finite());
            assert!(p.query_cost > 0.0);
        }
    }

    #[test]
    fn repetition_dispatch_is_thread_count_invariant() {
        let bench = bench();
        let seq = error_vs_cost(
            &bench.clone().with_threads(1),
            SamplerKind::Srw,
            &Aggregate::Degree,
            &[80, 160],
            3,
            29,
        );
        let par = error_vs_cost(
            &bench.clone().with_threads(8),
            SamplerKind::Srw,
            &Aggregate::Degree,
            &[80, 160],
            3,
            29,
        );
        assert_eq!(
            seq, par,
            "parallel repetition dispatch must not change results"
        );
    }

    #[test]
    fn sampler_kind_spec_roundtrip() {
        let config = WalkEstimateConfig::default();
        assert!(matches!(
            SamplerKind::Srw.spec(&config),
            wnw_engine::SamplerSpec::ManyShortRuns {
                input: RandomWalkKind::Simple,
                ..
            }
        ));
        assert!(matches!(
            SamplerKind::SrwOneLongRun.spec(&config),
            wnw_engine::SamplerSpec::OneLongRun { .. }
        ));
        let we = SamplerKind::WalkEstimate {
            input: RandomWalkKind::MetropolisHastings,
            variant: WalkEstimateVariant::CrawlOnly,
        };
        match we.spec(&config) {
            wnw_engine::SamplerSpec::WalkEstimate { input, config } => {
                assert_eq!(input, RandomWalkKind::MetropolisHastings);
                assert_eq!(config.variant, WalkEstimateVariant::CrawlOnly);
            }
            other => panic!("wrong spec {other:?}"),
        }
    }
}
