//! Figure 7 — Yelp: relative error of AVG estimations vs query cost.
//!
//! Four panels over the Yelp-like surrogate (largest connected component of
//! the user-user graph), SRW vs WE(SRW): (a) AVG degree, (b) AVG stars,
//! (c) AVG shortest-path length, (d) AVG local clustering coefficient.
//! Walk length `2·D̄ + 1` with the conservative `D̄ = 10`, crawl depth
//! `h = 2` (the paper's setting for Yelp).

use crate::datasets::DatasetRegistry;
use crate::figures::error_vs_cost_panel;
use crate::measures::Aggregate;
use crate::report::{ExperimentScale, FigureResult};
use crate::runner::{SamplerKind, Workbench};
use wnw_core::{WalkEstimateConfig, WalkLengthPolicy};
use wnw_graph::generators::surrogate::ATTR_STARS;

/// Regenerates Figure 7.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let registry = DatasetRegistry::new(scale);
    let dataset = registry.yelp();
    let budgets = registry.query_budget_grid(dataset.graph.node_count());
    let repetitions = scale.repetitions();
    // Crawl depth 2 is the paper's Yelp setting; on the tiny quick-scale
    // surrogate a 2-hop crawl would already cover most of the graph, so the
    // quick runs use depth 1.
    let crawl_depth = if scale == ExperimentScale::Quick {
        1
    } else {
        2
    };
    let config = WalkEstimateConfig::default()
        .with_walk_length(WalkLengthPolicy::default())
        .with_crawl_depth(crawl_depth);
    // Each repetition runs through the pooled engine: two virtual walkers
    // over one shared cache, the repetition's budget split between them at
    // the job level (same semantics for the SRW baseline and for WE).
    let bench = Workbench::new(dataset.graph, config).with_pooled_walkers(2);

    let mut result = FigureResult::new(
        "fig07",
        "Yelp (surrogate): relative error of AVG estimations vs query cost (SRW vs WE)",
    );
    result.push_note("repetitions run through the pooled engine (2 virtual walkers, shared cache, job-level budget split)");
    let panels: [(&str, Aggregate); 4] = [
        ("a_avg_degree", Aggregate::Degree),
        (
            "b_avg_stars",
            Aggregate::NodeAttribute(ATTR_STARS.to_string()),
        ),
        ("c_avg_shortest_path", Aggregate::MeanShortestPath),
        ("d_avg_local_clustering", Aggregate::LocalClustering),
    ];
    let samplers = [
        SamplerKind::Srw,
        SamplerKind::Srw.walk_estimate_counterpart(),
    ];
    for (name, aggregate) in panels {
        let table = error_vs_cost_panel(
            &bench,
            name,
            &samplers,
            &aggregate,
            &budgets,
            repetitions,
            0x0702,
        );
        let base = crate::figures::mean_error_for(&table, "SRW");
        let we = crate::figures::mean_error_for(&table, "WE(SRW)");
        result.push_note(format!(
            "{name}: mean relative error {base:.4} (SRW) vs {we:.4} (WE)"
        ));
        result.push_table(table);
    }
    result
}
