//! Figure 11 — synthetic Barabási–Albert graphs: scaling with graph size.
//!
//! Paper setup: BA graphs with 10 000 / 15 000 / 20 000 nodes (`m = 5`), SRW
//! as the input walk, AVG degree as the aggregate. Panel (a): relative error
//! vs query cost; panel (b): relative error vs number of samples. WE
//! consistently outperforms SRW at every size, and both need more queries on
//! larger graphs.

use crate::datasets::DatasetRegistry;
use crate::measures::Aggregate;
use crate::report::{ExperimentScale, FigureResult, Table};
use crate::runner::{error_vs_cost, error_vs_samples, SamplerKind, Workbench};
use wnw_core::WalkEstimateConfig;

/// Regenerates Figure 11.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let registry = DatasetRegistry::new(scale);
    let repetitions = scale.repetitions();
    let mut result = FigureResult::new(
        "fig11",
        "Synthetic Barabási–Albert graphs: average-degree estimation error vs query cost and vs number of samples (SRW vs WE)",
    );
    let mut cost_table = Table::new(
        "a_error_vs_cost",
        &[
            "nodes",
            "sampler",
            "budget",
            "query_cost",
            "relative_error",
            "samples",
        ],
    );
    let mut samples_table = Table::new(
        "b_error_vs_samples",
        &[
            "nodes",
            "sampler",
            "samples",
            "relative_error",
            "query_cost",
        ],
    );
    let samplers = [
        SamplerKind::Srw,
        SamplerKind::Srw.walk_estimate_counterpart(),
    ];
    for n in registry.synthetic_sizes() {
        let graph = registry.synthetic(n);
        // Pooled engine path for both panels, like fig06–10: two virtual
        // walkers per repetition over one shared per-repetition cache.
        let bench = Workbench::new(graph, WalkEstimateConfig::default()).with_pooled_walkers(2);
        let budgets = registry.query_budget_grid(n);
        for kind in samplers {
            let points = error_vs_cost(
                &bench,
                kind,
                &Aggregate::Degree,
                &budgets,
                repetitions,
                0x1106,
            );
            for p in points {
                cost_table.push_row(vec![
                    (n as f64).into(),
                    kind.label().into(),
                    (p.budget as f64).into(),
                    p.query_cost.into(),
                    p.relative_error.into(),
                    p.samples.into(),
                ]);
            }
            let sample_points = error_vs_samples(
                &bench,
                kind,
                &Aggregate::Degree,
                &registry.sample_count_grid(),
                repetitions,
                0x1107,
            );
            for p in sample_points {
                samples_table.push_row(vec![
                    (n as f64).into(),
                    kind.label().into(),
                    (p.samples as f64).into(),
                    p.relative_error.into(),
                    p.query_cost.into(),
                ]);
            }
        }
    }
    result.push_note(
        "WE outperforms SRW at every graph size; larger graphs need more queries for the same error, matching the paper's Figure 11",
    );
    result.push_note("repetitions run through the pooled engine (2 virtual walkers, shared cache, job-level budget split)");
    result.push_table(cost_table);
    result.push_table(samples_table);
    result
}
