//! Figure 5 — the limitation study: steps per sample on long-diameter cycle
//! graphs.
//!
//! Paper setup: cycle graphs of 11, 21, 31, 41, 51 nodes (diameters 5–25),
//! SRW as input; plot the average number of walk steps per sample for plain
//! SRW and for WALK-ESTIMATE. SRW is barely affected by the diameter while
//! WE's cost explodes, because the backward estimation rarely hits the
//! starting neighborhood on a long thin graph — exactly why the paper says
//! WE should not be used on long-diameter graphs (and why real OSNs, with
//! diameters 3–8, are safe territory).

use crate::report::{ExperimentScale, FigureResult, Table};
use crate::runner::{api_calls_per_sample, SamplerKind, Workbench};
use wnw_core::{WalkEstimateConfig, WalkEstimateVariant, WalkLengthPolicy};
use wnw_graph::generators::classic::cycle;
use wnw_graph::metrics;
use wnw_mcmc::RandomWalkKind;

/// Regenerates Figure 5.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let (sizes, samples, repetitions): (Vec<usize>, usize, usize) = match scale {
        ExperimentScale::Quick => (vec![11, 21], 3, 2),
        ExperimentScale::Default => (vec![11, 21, 31, 41, 51], 10, 5),
        ExperimentScale::Paper => (vec![11, 21, 31, 41, 51], 20, 20),
    };
    let mut result = FigureResult::new(
        "fig05",
        "Average walk steps per sample on cycle graphs with growing diameter (SRW vs WE)",
    );
    let mut table = Table::new(
        "steps_vs_diameter",
        &["diameter", "nodes", "sampler", "steps_per_sample"],
    );
    for n in sizes {
        let graph = cycle(n);
        let diameter = metrics::exact_diameter(&graph).unwrap_or(n / 2);
        // On a cycle the crawl would immediately cover the whole starting
        // stretch, hiding the effect the figure is about; the paper's point
        // is about the backward walk, so use the plain variant with the
        // 2d+1 walk length rule.
        let config = WalkEstimateConfig::default()
            .with_walk_length(WalkLengthPolicy::paper_default(diameter))
            .with_crawl_depth(1)
            .with_variant(WalkEstimateVariant::Full);
        let bench = Workbench::new(graph, config);
        for (label, kind) in [
            ("SRW", SamplerKind::Srw),
            (
                "WE",
                SamplerKind::WalkEstimate {
                    input: RandomWalkKind::Simple,
                    variant: WalkEstimateVariant::Full,
                },
            ),
        ] {
            let steps = api_calls_per_sample(&bench, kind, samples, repetitions, 0x5105 + n as u64);
            table.push_row(vec![
                (diameter as f64).into(),
                (n as f64).into(),
                label.into(),
                steps.into(),
            ]);
        }
    }
    result.push_note(
        "WE's per-sample step count grows much faster with the diameter than SRW's — the limitation the paper highlights in Section 6.2",
    );
    result.push_table(table);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;

    #[test]
    fn figure5_we_cost_grows_with_diameter() {
        let result = run(ExperimentScale::Quick);
        let table = &result.tables[0];
        let we_steps: Vec<f64> = table
            .rows
            .iter()
            .filter(|r| matches!(&r[2], Cell::Text(s) if s == "WE"))
            .map(|r| match r[3] {
                Cell::Number(x) => x,
                _ => f64::NAN,
            })
            .collect();
        assert_eq!(we_steps.len(), 2);
        // Larger diameter => more steps per sample for WE.
        assert!(
            we_steps[1] > we_steps[0],
            "WE steps should grow with diameter: {we_steps:?}"
        );
        let srw_steps: Vec<f64> = table
            .rows
            .iter()
            .filter(|r| matches!(&r[2], Cell::Text(s) if s == "SRW"))
            .map(|r| match r[3] {
                Cell::Number(x) => x,
                _ => f64::NAN,
            })
            .collect();
        assert!(srw_steps.iter().all(|&s| s > 0.0));
    }
}
