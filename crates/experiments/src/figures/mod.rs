//! One module per paper artefact. Every module exposes
//! `run(scale) -> FigureResult`; the `repro` binary collects and writes them.

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;

use crate::measures::Aggregate;
use crate::report::{ExperimentScale, Table};
use crate::runner::{self, SamplerKind, Workbench};

/// A figure-regeneration entry point.
pub type FigureFn = fn(ExperimentScale) -> crate::report::FigureResult;

/// All figure ids in paper order, with the function regenerating each.
pub fn all_figures() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("fig01", fig01::run as FigureFn),
        ("fig02", fig02::run),
        ("fig03", fig03::run),
        ("fig05", fig05::run),
        ("fig06", fig06::run),
        ("fig07", fig07::run),
        ("fig08", fig08::run),
        ("fig09", fig09::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
    ]
}

/// Shared builder for the error-vs-query-cost panels of Figures 6–9: one
/// table per `(sampler, aggregate)` pair, each with a WE counterpart curve
/// when `pair_with_we` is set.
pub(crate) fn error_vs_cost_panel(
    bench: &Workbench,
    name: &str,
    samplers: &[SamplerKind],
    aggregate: &Aggregate,
    budgets: &[u64],
    repetitions: usize,
    seed: u64,
) -> Table {
    let mut table = Table::new(
        name,
        &[
            "sampler",
            "budget",
            "query_cost",
            "relative_error",
            "samples",
        ],
    );
    for kind in samplers {
        let points = runner::error_vs_cost(bench, *kind, aggregate, budgets, repetitions, seed);
        for p in points {
            table.push_row(vec![
                kind.label().into(),
                (p.budget as f64).into(),
                p.query_cost.into(),
                p.relative_error.into(),
                p.samples.into(),
            ]);
        }
    }
    table
}

/// Mean relative error of a sampler's rows within a panel table (used by
/// figure notes and tests to compare curves).
pub(crate) fn mean_error_for(table: &Table, sampler_label: &str) -> f64 {
    let sampler_idx = table
        .columns
        .iter()
        .position(|c| c == "sampler")
        .expect("sampler column");
    let err_idx = table
        .columns
        .iter()
        .position(|c| c == "relative_error")
        .expect("relative_error column");
    let mut sum = 0.0;
    let mut count = 0usize;
    for row in &table.rows {
        let label = match &row[sampler_idx] {
            crate::report::Cell::Text(s) => s.as_str(),
            crate::report::Cell::Number(_) => continue,
        };
        if label == sampler_label {
            if let crate::report::Cell::Number(e) = row[err_idx] {
                sum += e;
                count += 1;
            }
        }
    }
    if count == 0 {
        f64::NAN
    } else {
        sum / count as f64
    }
}
