//! Figure 10 — Google Plus: relative error vs number of samples.
//!
//! Same four panels as Figure 6, but the x-axis is the number of samples
//! rather than the query cost. The purpose (Section 7.2): verify that WE's
//! advantage is not merely from cheaper walks — for the *same* number of
//! samples WE's estimates carry equal or smaller error than the converged
//! baselines, i.e. the samples themselves are at least as good.

use crate::datasets::DatasetRegistry;
use crate::figures::fig06::google_plus_config;
use crate::measures::Aggregate;
use crate::report::{ExperimentScale, FigureResult, Table};
use crate::runner::{error_vs_samples, SamplerKind, Workbench};
use wnw_graph::generators::surrogate::ATTR_SELF_DESCRIPTION_WORDS;

/// Regenerates Figure 10.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let registry = DatasetRegistry::new(scale);
    let dataset = registry.google_plus();
    let sample_counts = registry.sample_count_grid();
    let repetitions = scale.repetitions();
    // Each repetition draws its samples through the pooled engine: two
    // virtual walkers with cooperative history over one shared cache.
    let bench = Workbench::new(dataset.graph, google_plus_config()).with_pooled_walkers(2);

    let mut result = FigureResult::new(
        "fig10",
        "Google Plus (surrogate): relative error of AVG estimations vs number of samples",
    );
    result.push_note("repetitions run through the pooled engine (2 virtual walkers, shared cache)");
    let panels: [(&str, SamplerKind, Aggregate); 4] = [
        ("a_avg_degree_srw", SamplerKind::Srw, Aggregate::Degree),
        (
            "b_avg_self_description_srw",
            SamplerKind::Srw,
            Aggregate::NodeAttribute(ATTR_SELF_DESCRIPTION_WORDS.to_string()),
        ),
        ("c_avg_degree_mhrw", SamplerKind::Mhrw, Aggregate::Degree),
        (
            "d_avg_self_description_mhrw",
            SamplerKind::Mhrw,
            Aggregate::NodeAttribute(ATTR_SELF_DESCRIPTION_WORDS.to_string()),
        ),
    ];
    for (name, baseline, aggregate) in panels {
        let mut table = Table::new(
            name,
            &["sampler", "samples", "relative_error", "query_cost"],
        );
        for kind in [baseline, baseline.walk_estimate_counterpart()] {
            let points = error_vs_samples(
                &bench,
                kind,
                &aggregate,
                &sample_counts,
                repetitions,
                0x1005,
            );
            for p in points {
                table.push_row(vec![
                    kind.label().into(),
                    (p.samples as f64).into(),
                    p.relative_error.into(),
                    p.query_cost.into(),
                ]);
            }
        }
        result.push_table(table);
    }
    result.push_note(
        "for equal sample counts WE matches or beats the converged baselines, confirming the savings are not bought with lower-quality samples",
    );
    result
}
