//! Figure 6 — Google Plus: relative error of AVG estimations vs query cost.
//!
//! Four panels: (a) AVG degree, SRW vs WE(SRW); (b) AVG self-description
//! length, SRW vs WE(SRW); (c) AVG degree, MHRW vs WE(MHRW); (d) AVG
//! self-description length, MHRW vs WE(MHRW). The paper's finding: WE offers
//! substantially smaller relative error at the same query cost on both
//! aggregates and both input walks.
//!
//! The Google Plus crawl is replaced by the surrogate described in
//! `DESIGN.md`; walk length follows the paper's setting `2·d + 1` with
//! `d = 7`, initial crawling depth `h = 1` (the hub degrees make deeper
//! crawls needlessly expensive), `ε = 0.1`.

use crate::datasets::DatasetRegistry;
use crate::figures::error_vs_cost_panel;
use crate::measures::Aggregate;
use crate::report::{ExperimentScale, FigureResult};
use crate::runner::{SamplerKind, Workbench};
use wnw_core::{WalkEstimateConfig, WalkLengthPolicy};
use wnw_graph::generators::surrogate::ATTR_SELF_DESCRIPTION_WORDS;

/// The WALK-ESTIMATE configuration used for the Google Plus experiments
/// (Section 7.1 parameter settings).
pub(crate) fn google_plus_config() -> WalkEstimateConfig {
    WalkEstimateConfig::default()
        .with_walk_length(WalkLengthPolicy::paper_default(7))
        .with_crawl_depth(1)
}

/// Regenerates Figure 6.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let registry = DatasetRegistry::new(scale);
    let dataset = registry.google_plus();
    let budgets = registry.query_budget_grid(dataset.graph.node_count());
    let repetitions = scale.repetitions();
    // Each repetition runs through the pooled engine: two virtual walkers
    // over one shared cache, the repetition's budget split between them at
    // the job level (same semantics for the baselines and for WE).
    let bench = Workbench::new(dataset.graph, google_plus_config()).with_pooled_walkers(2);

    let mut result = FigureResult::new(
        "fig06",
        "Google Plus (surrogate): relative error of AVG estimations vs query cost",
    );
    result.push_note("repetitions run through the pooled engine (2 virtual walkers, shared cache, job-level budget split)");
    let panels: [(&str, SamplerKind, Aggregate); 4] = [
        ("a_avg_degree_srw", SamplerKind::Srw, Aggregate::Degree),
        (
            "b_avg_self_description_srw",
            SamplerKind::Srw,
            Aggregate::NodeAttribute(ATTR_SELF_DESCRIPTION_WORDS.to_string()),
        ),
        ("c_avg_degree_mhrw", SamplerKind::Mhrw, Aggregate::Degree),
        (
            "d_avg_self_description_mhrw",
            SamplerKind::Mhrw,
            Aggregate::NodeAttribute(ATTR_SELF_DESCRIPTION_WORDS.to_string()),
        ),
    ];
    for (name, baseline, aggregate) in panels {
        let samplers = [baseline, baseline.walk_estimate_counterpart()];
        let table = error_vs_cost_panel(
            &bench,
            name,
            &samplers,
            &aggregate,
            &budgets,
            repetitions,
            0x0601,
        );
        let base_err = crate::figures::mean_error_for(&table, &baseline.label());
        let we_err =
            crate::figures::mean_error_for(&table, &baseline.walk_estimate_counterpart().label());
        result.push_note(format!(
            "{name}: mean relative error {base_err:.4} ({}) vs {we_err:.4} ({})",
            baseline.label(),
            baseline.walk_estimate_counterpart().label()
        ));
        result.push_table(table);
    }
    result
}

/// Quick-scale smoke coverage lives in the workspace integration tests
/// (`tests/figures_smoke.rs`) because a full panel run is too slow for a unit
/// test; here we only check the configuration constants.
#[cfg(test)]
mod tests {
    use super::*;
    use wnw_core::WalkEstimateVariant;
    use wnw_mcmc::RandomWalkKind;

    #[test]
    fn google_plus_config_matches_paper() {
        let c = google_plus_config();
        assert_eq!(c.walk_length.resolve(None), 15); // 2·7 + 1
        assert_eq!(c.crawl_depth, 1);
        assert_eq!(c.variant, WalkEstimateVariant::Full);
        assert_eq!(
            SamplerKind::Mhrw.walk_estimate_counterpart(),
            SamplerKind::WalkEstimate {
                input: RandomWalkKind::MetropolisHastings,
                variant: WalkEstimateVariant::Full
            }
        );
    }
}
