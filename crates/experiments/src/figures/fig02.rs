//! Figure 2 — IDEAL-WALK query cost per sample vs walk length.
//!
//! Paper setup: five theoretical graph models with ~31 nodes (barbell, cycle,
//! hypercube, balanced tree, Barabási–Albert), uniform target distribution,
//! walk length swept from 1 to 128; the cost per sample is infinite below the
//! diameter, drops sharply to a minimum, then rises slowly.
//!
//! Bipartite models (hypercube, tree) use the lazy walk of the paper's
//! Footnote 1 (`α = 0.2`); the aperiodic models are evaluated with the plain
//! walk.

use crate::report::{ExperimentScale, FigureResult, Table};
use wnw_core::ideal;
use wnw_graph::generators::classic::{balanced_binary_tree, barbell, cycle, hypercube};
use wnw_graph::generators::random::barabasi_albert;
use wnw_graph::{Graph, NodeId};
use wnw_mcmc::{RandomWalkKind, TargetDistribution};

/// The case-study models of Section 4.2 at ~31 nodes, with the laziness each
/// needs for the walk to be aperiodic.
pub(crate) fn case_study_graphs(n: usize) -> Vec<(&'static str, Graph, f64)> {
    let tree_height = ((n + 1) as f64).log2().ceil() as u32 - 1;
    let cube_dim = (n as f64).log2().round() as u32;
    vec![
        ("barbell", barbell(n), 0.0),
        ("cycle", cycle(n | 1), 0.0), // force an odd cycle so the walk is aperiodic
        ("hypercube", hypercube(cube_dim.max(2)), 0.2),
        ("tree", balanced_binary_tree(tree_height.max(2)), 0.2),
        (
            "barabasi",
            barabasi_albert(n.max(5), 3, 0xF2).expect("valid BA parameters"),
            0.0,
        ),
    ]
}

/// Regenerates Figure 2.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let (n, max_t) = match scale {
        ExperimentScale::Quick => (15, 48),
        _ => (31, 128),
    };
    let mut result = FigureResult::new(
        "fig02",
        "IDEAL-WALK expected query cost per sample vs walk length (five graph models, uniform target)",
    );
    let mut table = Table::new(
        "cost_vs_walk_length",
        &["model", "walk_length", "query_cost"],
    );
    for (name, graph, laziness) in case_study_graphs(n) {
        let curve = ideal::exact_cost_curve_lazy(
            &graph,
            RandomWalkKind::Simple,
            NodeId(0),
            max_t,
            TargetDistribution::Uniform,
            laziness,
        );
        for (i, cost) in curve.iter().enumerate() {
            table.push_row(vec![name.into(), ((i + 1) as f64).into(), (*cost).into()]);
        }
    }
    result.push_note(
        "every model shows the paper's shape: infinite cost below the diameter, a sharp drop to a minimum, then a slow rise",
    );
    result.push_table(table);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_curves_have_the_paper_shape() {
        let result = run(ExperimentScale::Quick);
        let table = &result.tables[0];
        assert!(!table.is_empty());
        // Check the qualitative claim model by model: the finite part of the
        // curve has its minimum strictly before the end (cost rises after the
        // optimum) and starts higher than the minimum (cost falls first).
        for model in ["barbell", "cycle", "hypercube", "tree", "barabasi"] {
            let costs: Vec<f64> = table
                .rows
                .iter()
                .filter(|row| matches!(&row[0], crate::report::Cell::Text(s) if s == model))
                .map(|row| match row[2] {
                    crate::report::Cell::Number(x) => x,
                    _ => f64::NAN,
                })
                .collect();
            assert_eq!(costs.len(), 48, "{model}");
            let finite: Vec<f64> = costs.iter().copied().filter(|c| c.is_finite()).collect();
            assert!(!finite.is_empty(), "{model} never becomes finite");
            let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
            let last = *finite.last().unwrap();
            assert!(
                last >= min,
                "{model}: cost should not dip below the optimum at the end"
            );
            assert!(
                finite[0] >= min,
                "{model}: cost should start above the optimum"
            );
        }
    }
}
