//! Figure 9 — ablation of the variance-reduction heuristics on Google Plus.
//!
//! Same four panels as Figure 6, but comparing the four WALK-ESTIMATE
//! variants against each other: WE-None (no heuristic), WE-Crawl (initial
//! crawling only), WE-Weighted (weighted backward sampling only), and the
//! full WE. The paper's finding: WE outperforms the single-heuristic
//! variants, which in turn outperform WE-None.

use crate::datasets::DatasetRegistry;
use crate::figures::error_vs_cost_panel;
use crate::figures::fig06::google_plus_config;
use crate::measures::Aggregate;
use crate::report::{ExperimentScale, FigureResult};
use crate::runner::{SamplerKind, Workbench};
use wnw_core::WalkEstimateVariant;
use wnw_graph::generators::surrogate::ATTR_SELF_DESCRIPTION_WORDS;
use wnw_mcmc::RandomWalkKind;

fn variant_samplers(input: RandomWalkKind) -> [SamplerKind; 4] {
    [
        SamplerKind::WalkEstimate {
            input,
            variant: WalkEstimateVariant::None,
        },
        SamplerKind::WalkEstimate {
            input,
            variant: WalkEstimateVariant::CrawlOnly,
        },
        SamplerKind::WalkEstimate {
            input,
            variant: WalkEstimateVariant::WeightedOnly,
        },
        SamplerKind::WalkEstimate {
            input,
            variant: WalkEstimateVariant::Full,
        },
    ]
}

/// Regenerates Figure 9.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let registry = DatasetRegistry::new(scale);
    let dataset = registry.google_plus();
    let budgets = registry.query_budget_grid(dataset.graph.node_count());
    let repetitions = scale.repetitions();
    // Like fig06–08: each repetition runs through the pooled engine — two
    // virtual walkers over one shared per-repetition cache, the budget
    // split between them at the job level — for every ablation variant.
    let bench = Workbench::new(dataset.graph, google_plus_config()).with_pooled_walkers(2);

    let mut result = FigureResult::new(
        "fig09",
        "Google Plus (surrogate): variance-reduction ablation — WE vs WE-None / WE-Crawl / WE-Weighted",
    );
    result.push_note("repetitions run through the pooled engine (2 virtual walkers, shared cache, job-level budget split)");
    let panels: [(&str, RandomWalkKind, Aggregate); 4] = [
        (
            "a_avg_degree_srw",
            RandomWalkKind::Simple,
            Aggregate::Degree,
        ),
        (
            "b_avg_self_description_srw",
            RandomWalkKind::Simple,
            Aggregate::NodeAttribute(ATTR_SELF_DESCRIPTION_WORDS.to_string()),
        ),
        (
            "c_avg_degree_mhrw",
            RandomWalkKind::MetropolisHastings,
            Aggregate::Degree,
        ),
        (
            "d_avg_self_description_mhrw",
            RandomWalkKind::MetropolisHastings,
            Aggregate::NodeAttribute(ATTR_SELF_DESCRIPTION_WORDS.to_string()),
        ),
    ];
    for (name, input, aggregate) in panels {
        let samplers = variant_samplers(input);
        let table = error_vs_cost_panel(
            &bench,
            name,
            &samplers,
            &aggregate,
            &budgets,
            repetitions,
            0x0904,
        );
        let none = crate::figures::mean_error_for(&table, &samplers[0].label());
        let full = crate::figures::mean_error_for(&table, &samplers[3].label());
        result.push_note(format!(
            "{name}: mean relative error {none:.4} (WE-None) vs {full:.4} (WE)"
        ));
        result.push_table(table);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_all_four_variants() {
        let samplers = variant_samplers(RandomWalkKind::Simple);
        let labels: Vec<String> = samplers.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "WE-None(SRW)",
                "WE-Crawl(SRW)",
                "WE-Weighted(SRW)",
                "WE(SRW)"
            ]
        );
    }
}
