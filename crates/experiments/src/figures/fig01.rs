//! Figure 1 — minimum and maximum sampling probability vs walk length.
//!
//! Paper setup: a Barabási–Albert scale-free graph with 31 nodes (`m = 3`),
//! simple random walk; plot `max_v p_t(v)` and `min_v p_t(v)` for walk
//! lengths up to ~80. The figure motivates the whole paper: the maximum
//! probability decays sharply at the start, the minimum becomes positive
//! around the diameter, and both flatten out quickly afterwards — so waiting
//! longer buys little.

use crate::report::{ExperimentScale, FigureResult, Table};
use wnw_graph::generators::random::barabasi_albert;
use wnw_graph::NodeId;
use wnw_mcmc::distribution::TransitionMatrix;
use wnw_mcmc::RandomWalkKind;

/// Regenerates Figure 1.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let max_t = match scale {
        ExperimentScale::Quick => 40,
        _ => 80,
    };
    let graph = barabasi_albert(31, 3, 0xF1).expect("valid BA parameters");
    let matrix = TransitionMatrix::new(&graph, RandomWalkKind::Simple);
    let trajectory = matrix.distribution_trajectory(NodeId(0), max_t);

    let mut table = Table::new("prob_extrema", &["walk_length", "max_prob", "min_prob"]);
    for (t, dist) in trajectory.iter().enumerate() {
        let max = dist.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = dist.iter().copied().fold(f64::INFINITY, f64::min);
        table.push_row(vec![(t as f64).into(), max.into(), min.into()]);
    }

    let mut result = FigureResult::new(
        "fig01",
        "Minimum and maximum sampling probability vs walk length (BA n=31, m=3, SRW)",
    );
    let max_start = table
        .numeric_column("max_prob")
        .first()
        .copied()
        .unwrap_or(0.0);
    let max_end = table
        .numeric_column("max_prob")
        .last()
        .copied()
        .unwrap_or(0.0);
    result.push_note(format!(
        "max probability drops from {max_start:.3} at t=0 to {max_end:.3} at t={max_t}; the paper reports the same order-of-magnitude collapse within the first few steps"
    ));
    result.push_table(table);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape_matches_paper() {
        let result = run(ExperimentScale::Quick);
        let table = &result.tables[0];
        let max = table.numeric_column("max_prob");
        let min = table.numeric_column("min_prob");
        assert_eq!(max.len(), 41); // t = 0..=40
                                   // Max probability starts at 1 (the walk sits on the start node) and
                                   // decays sharply within the first few steps.
        assert_eq!(max[0], 1.0);
        assert!(max[0] > 5.0 * max[10]);
        // Min probability starts at 0 (unreached nodes) and becomes positive
        // once the walk exceeds the diameter.
        assert_eq!(min[0], 0.0);
        assert!(*min.last().unwrap() > 0.0);
        // Both end up between the two extremes of the stationary distribution.
        assert!(*max.last().unwrap() < max[0]);
    }
}
