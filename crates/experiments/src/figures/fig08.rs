//! Figure 8 — Twitter: relative error of AVG estimations vs query cost.
//!
//! Four panels over the Twitter-like surrogate (mutual-follow reduction of a
//! directed preferential-attachment graph), SRW vs WE(SRW): (a) AVG
//! in-degree, (b) AVG out-degree, (c) AVG local clustering coefficient,
//! (d) AVG shortest-path length. (The paper's panel captions repeat the
//! clustering coefficient twice; the shortest-path aggregate mentioned in the
//! experiment text is used for the fourth panel here.)

use crate::datasets::DatasetRegistry;
use crate::figures::error_vs_cost_panel;
use crate::measures::Aggregate;
use crate::report::{ExperimentScale, FigureResult};
use crate::runner::{SamplerKind, Workbench};
use wnw_core::{WalkEstimateConfig, WalkLengthPolicy};
use wnw_graph::generators::surrogate::{ATTR_IN_DEGREE, ATTR_OUT_DEGREE};

/// Regenerates Figure 8.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let registry = DatasetRegistry::new(scale);
    let dataset = registry.twitter();
    let budgets = registry.query_budget_grid(dataset.graph.node_count());
    let repetitions = scale.repetitions();
    // Depth 2 is the paper's setting; the tiny quick-scale surrogate uses
    // depth 1 so the crawl does not swallow the whole query budget.
    let crawl_depth = if scale == ExperimentScale::Quick {
        1
    } else {
        2
    };
    let config = WalkEstimateConfig::default()
        .with_walk_length(WalkLengthPolicy::default())
        .with_crawl_depth(crawl_depth);
    // Each repetition runs through the pooled engine: two virtual walkers
    // over one shared cache, the repetition's budget split between them at
    // the job level (same semantics for the SRW baseline and for WE).
    let bench = Workbench::new(dataset.graph, config).with_pooled_walkers(2);

    let mut result = FigureResult::new(
        "fig08",
        "Twitter (surrogate): relative error of AVG estimations vs query cost (SRW vs WE)",
    );
    result.push_note("repetitions run through the pooled engine (2 virtual walkers, shared cache, job-level budget split)");
    let panels: [(&str, Aggregate); 4] = [
        (
            "a_avg_in_degree",
            Aggregate::NodeAttribute(ATTR_IN_DEGREE.to_string()),
        ),
        (
            "b_avg_out_degree",
            Aggregate::NodeAttribute(ATTR_OUT_DEGREE.to_string()),
        ),
        ("c_avg_local_clustering", Aggregate::LocalClustering),
        ("d_avg_shortest_path", Aggregate::MeanShortestPath),
    ];
    let samplers = [
        SamplerKind::Srw,
        SamplerKind::Srw.walk_estimate_counterpart(),
    ];
    for (name, aggregate) in panels {
        let table = error_vs_cost_panel(
            &bench,
            name,
            &samplers,
            &aggregate,
            &budgets,
            repetitions,
            0x0803,
        );
        let base = crate::figures::mean_error_for(&table, "SRW");
        let we = crate::figures::mean_error_for(&table, "WE(SRW)");
        result.push_note(format!(
            "{name}: mean relative error {base:.4} (SRW) vs {we:.4} (WE)"
        ));
        result.push_table(table);
    }
    result
}
