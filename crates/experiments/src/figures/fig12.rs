//! Figure 12 + Table 1 — exact sampling-distribution bias on a small
//! scale-free graph.
//!
//! Paper setup: a 1000-node scale-free graph (6951 edges); run the samplers
//! with a very large budget so every node is sampled many times, build the
//! empirical sampling distribution of (1) SRW and (2) WE targeting the
//! uniform distribution, and compare both against the theoretical uniform
//! target:
//!
//! * Figure 12 — PDF and CDF with nodes ordered by degree (descending);
//! * Table 1 — ℓ∞ and KL distance of each empirical distribution from the
//!   target.
//!
//! The paper reports ℓ∞ 0.0081 (SRW) vs 0.0055 (WE) and KL 0.475 (SRW) vs
//! 0.018 (WE): WE is dramatically closer to uniform because SRW's samples
//! stay degree-biased.

use crate::datasets::DatasetRegistry;
use crate::report::{ExperimentScale, FigureResult, Table};
use crate::runner::{draw_nodes, SamplerKind, Workbench};
use wnw_analytics::bias::{degree_ordered_series, EmpiricalDistribution};
use wnw_core::{WalkEstimateConfig, WalkEstimateVariant};
use wnw_mcmc::RandomWalkKind;

/// Regenerates Figure 12 and Table 1.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let registry = DatasetRegistry::new(scale);
    let graph = registry.exact_bias_graph();
    let n = graph.node_count();
    // Draws per node on average; the paper samples each node ~1000 times,
    // which is what the paper-scale run does.
    let draws = match scale {
        ExperimentScale::Quick => n * 10,
        ExperimentScale::Default => n * 50,
        ExperimentScale::Paper => n * 1000,
    };
    let bench = Workbench::new(graph.clone(), WalkEstimateConfig::default());
    let uniform = vec![1.0 / n as f64; n];

    let srw_nodes = draw_nodes(&bench, SamplerKind::Srw, draws, 0x1201);
    let we_kind = SamplerKind::WalkEstimate {
        input: RandomWalkKind::MetropolisHastings,
        variant: WalkEstimateVariant::Full,
    };
    let we_nodes = draw_nodes(&bench, we_kind, draws, 0x1202);

    let srw_dist = EmpiricalDistribution::from_samples(n, &srw_nodes);
    let we_dist = EmpiricalDistribution::from_samples(n, &we_nodes);

    let mut result = FigureResult::new(
        "fig12",
        "Exact sampling-distribution bias on a small scale-free graph (Figure 12 + Table 1)",
    );

    // Figure 12: degree-ordered PDF and CDF of theoretical / SRW / WE.
    let mut pdf_table = Table::new(
        "pdf_cdf_by_degree_rank",
        &[
            "rank", "degree", "theo_pdf", "srw_pdf", "we_pdf", "theo_cdf", "srw_cdf", "we_cdf",
        ],
    );
    let theo_series = degree_ordered_series(&graph, &uniform);
    let srw_series = degree_ordered_series(&graph, &srw_dist.probabilities());
    let we_series = degree_ordered_series(&graph, &we_dist.probabilities());
    for ((t, s), w) in theo_series.iter().zip(&srw_series).zip(&we_series) {
        pdf_table.push_row(vec![
            (t.rank as f64).into(),
            (t.degree as f64).into(),
            t.pdf.into(),
            s.pdf.into(),
            w.pdf.into(),
            t.cdf.into(),
            s.cdf.into(),
            w.cdf.into(),
        ]);
    }
    result.push_table(pdf_table);

    // Table 1: distance measures.
    let mut distances = Table::new(
        "table1_distances",
        &[
            "distance_measure",
            "dist_theoretical_srw",
            "dist_theoretical_we",
        ],
    );
    distances.push_row(vec![
        "linf".into(),
        srw_dist.linf_distance(&uniform).into(),
        we_dist.linf_distance(&uniform).into(),
    ]);
    distances.push_row(vec![
        "kl_divergence".into(),
        srw_dist.kl_from_target(&uniform).into(),
        we_dist.kl_from_target(&uniform).into(),
    ]);
    distances.push_row(vec![
        "total_variation".into(),
        srw_dist.total_variation_distance(&uniform).into(),
        we_dist.total_variation_distance(&uniform).into(),
    ]);
    result.push_note(format!(
        "KL(theo, SRW) = {:.4} vs KL(theo, WE) = {:.4} — WE's sampling distribution is much closer to the uniform target, as in Table 1",
        srw_dist.kl_from_target(&uniform),
        we_dist.kl_from_target(&uniform)
    ));
    result.push_table(distances);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;

    #[test]
    #[ignore = "several seconds; run with --ignored or via the repro binary"]
    fn table1_we_is_closer_to_uniform_than_srw() {
        let result = run(ExperimentScale::Quick);
        let distances = result
            .tables
            .iter()
            .find(|t| t.name == "table1_distances")
            .expect("table 1 present");
        for row in &distances.rows {
            let (srw, we) = match (&row[1], &row[2]) {
                (Cell::Number(a), Cell::Number(b)) => (*a, *b),
                _ => panic!("numeric cells expected"),
            };
            assert!(
                we <= srw,
                "WE distance {we} should not exceed SRW distance {srw}"
            );
        }
    }
}
