//! Figure 3 — query-cost saving of IDEAL-WALK vs graph size.
//!
//! Paper setup: the same five graph models with sizes from 4 to 128 nodes;
//! the y-axis is the saving `1 − c/c_RW` in percent, computed from the
//! Theorem 1 cost model with the measured spectral gap and maximum degree of
//! each instance. The headline observations: savings exceed ~50 % almost
//! everywhere, grow with size for the barbell, stay flat for hypercube /
//! tree / Barabási–Albert, and shrink for the cycle (whose diameter grows
//! linearly).

use crate::figures::fig02::case_study_graphs;
use crate::report::{ExperimentScale, FigureResult, Table};
use wnw_core::IdealWalkAnalysis;
use wnw_mcmc::RandomWalkKind;

/// The ℓ∞ bias requirement used for the saving computation.
const DELTA: f64 = 0.001;

/// Regenerates Figure 3.
pub fn run(scale: ExperimentScale) -> FigureResult {
    let sizes: Vec<usize> = match scale {
        ExperimentScale::Quick => vec![16, 32, 64],
        _ => vec![8, 16, 32, 64, 96, 128],
    };
    let mut result = FigureResult::new(
        "fig03",
        "Query-cost saving of IDEAL-WALK over the input random walk vs graph size (Theorem 1 model, Δ = 0.001)",
    );
    let mut table = Table::new(
        "saving_vs_size",
        &["model", "nodes", "spectral_gap", "saving_pct"],
    );
    for size in sizes {
        for (name, graph, _laziness) in case_study_graphs(size) {
            if graph.node_count() < 4 {
                continue;
            }
            let analysis = IdealWalkAnalysis::from_graph(&graph, RandomWalkKind::Simple);
            let saving = analysis.saving(DELTA.min(analysis.gamma * 0.5)) * 100.0;
            table.push_row(vec![
                name.into(),
                (graph.node_count() as f64).into(),
                analysis.lambda.into(),
                saving.into(),
            ]);
        }
    }
    result.push_note(
        "savings stay above ~50% for the low-diameter models and are smallest for the cycle, matching the paper's Figure 3",
    );
    result.push_table(table);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;

    fn savings_for(result: &FigureResult, model: &str) -> Vec<f64> {
        result.tables[0]
            .rows
            .iter()
            .filter(|row| matches!(&row[0], Cell::Text(s) if s == model))
            .map(|row| match row[3] {
                Cell::Number(x) => x,
                _ => f64::NAN,
            })
            .collect()
    }

    #[test]
    fn figure3_savings_are_positive_for_every_model() {
        let result = run(ExperimentScale::Quick);
        let table = &result.tables[0];
        assert!(!table.is_empty());
        let mut all = Vec::new();
        for model in ["barbell", "cycle", "hypercube", "tree", "barabasi"] {
            let savings = savings_for(&result, model);
            assert!(!savings.is_empty(), "{model} missing from the table");
            for s in savings {
                // Theorem 1 guarantees IDEAL-WALK never loses (saving > 0).
                assert!(s > 0.0 && s <= 100.0, "{model}: saving {s}");
                all.push(s);
            }
        }
        // The headline of Figure 3: the savings are substantial, not marginal.
        let mean: f64 = all.iter().sum::<f64>() / all.len() as f64;
        assert!(mean > 20.0, "mean saving {mean}% should be substantial");
        // The low-diameter expander-ish models (hypercube, Barabási–Albert)
        // enjoy sizeable savings.
        for model in ["hypercube", "barabasi"] {
            let last = *savings_for(&result, model).last().unwrap();
            assert!(last > 20.0, "{model} saving {last}% should be sizeable");
        }
    }
}
