//! Dataset registry: the surrogate and synthetic graphs every figure draws
//! from, sized according to the experiment scale.
//!
//! Graphs are generated deterministically from fixed seeds and cached on
//! disk by default, so repeated `repro` invocations load instead of
//! regenerate — at paper scale, regeneration dominates a figure's runtime.
//! Two cache substrates share one directory
//! (`wnw_catalog::catalog_dir()/experiments`, overridable via
//! `$WNW_CATALOG_DIR` or [`DatasetRegistry::with_cache_dir`]):
//!
//! * pure-topology graphs (the Figure 11 synthetic BA family and the
//!   exact-bias graph) go through [`wnw_catalog::GraphSpec`] binary
//!   catalogs — checksummed, versioned, rebuilt-not-trusted on damage;
//! * attributed surrogates (Google-Plus-, Yelp-, Twitter-like) use
//!   [`wnw_graph::io`] snapshots, which carry the attribute columns the
//!   catalog format deliberately omits.
//!
//! Both roundtrips preserve adjacency exactly ([`Graph`] neighbor lists are
//! always id-sorted), so cached and freshly-generated runs walk identical
//! paths.

use crate::report::ExperimentScale;
use std::path::{Path, PathBuf};
use wnw_catalog::{catalog_dir, GraphModel, GraphSpec};
use wnw_graph::generators::surrogate::{self, SurrogateDataset};
use wnw_graph::{io, Graph};

/// Seeds fixed across the whole reproduction so results are repeatable.
pub mod seeds {
    /// Google-Plus-like surrogate seed.
    pub const GOOGLE_PLUS: u64 = 0x0601;
    /// Yelp-like surrogate seed.
    pub const YELP: u64 = 0x0702;
    /// Twitter-like surrogate seed.
    pub const TWITTER: u64 = 0x0803;
    /// Synthetic Barabási–Albert graphs (Figure 11).
    pub const SYNTHETIC: u64 = 0x0B0B;
    /// The 1000-node exact-bias graph (Figure 12 / Table 1).
    pub const EXACT_BIAS: u64 = 0x0C0C;
}

/// Builds (and optionally caches) the datasets used by the figures.
#[derive(Debug, Clone)]
pub struct DatasetRegistry {
    scale: ExperimentScale,
    cache_dir: Option<PathBuf>,
}

impl DatasetRegistry {
    /// A registry caching under the default catalog directory
    /// (`wnw_catalog::catalog_dir()/experiments`).
    pub fn new(scale: ExperimentScale) -> Self {
        DatasetRegistry {
            scale,
            cache_dir: Some(catalog_dir().join("experiments")),
        }
    }

    /// Moves the cache under `dir` instead of the default catalog directory.
    pub fn with_cache_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.cache_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Disables on-disk caching entirely; every dataset is regenerated.
    pub fn without_cache(mut self) -> Self {
        self.cache_dir = None;
        self
    }

    /// The scale this registry builds for.
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// Snapshot cache for attributed surrogates. A snapshot that fails to
    /// parse is regenerated, never trusted; the write goes through a temp
    /// file + rename so concurrent `repro` runs never read a half-written
    /// snapshot.
    fn cached(&self, name: &str, build: impl FnOnce() -> Graph) -> Graph {
        if let Some(dir) = &self.cache_dir {
            let path = dir.join(format!("{name}.snapshot"));
            if path.exists() {
                if let Ok(graph) = io::read_snapshot_file(&path) {
                    return graph;
                }
            }
            let graph = build();
            if std::fs::create_dir_all(dir).is_ok() {
                let tmp = dir.join(format!(".{name}.snapshot.tmp-{}", std::process::id()));
                if io::write_snapshot_file(&graph, &tmp).is_ok()
                    && std::fs::rename(&tmp, &path).is_err()
                {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
            return graph;
        }
        build()
    }

    /// Binary-catalog cache for pure-topology graphs: load the spec's
    /// `.wnwcat` file if a valid one exists, otherwise generate and cache.
    /// The CSR roundtrip preserves adjacency exactly, so walks over a
    /// loaded graph match walks over a freshly generated one.
    fn catalog(&self, name: &str, m: usize, n: usize, seed: u64) -> Graph {
        let spec = GraphSpec::new(name, GraphModel::BarabasiAlbert { m }, n, seed);
        let csr = match &self.cache_dir {
            Some(dir) => spec.load_or_build_in(dir).expect("valid graph spec").0,
            None => spec.build().expect("valid graph spec"),
        };
        csr.to_graph()
    }

    /// Node count of the Google-Plus-like surrogate at this scale
    /// (paper: 16 405 users).
    pub fn google_plus_size(&self) -> usize {
        match self.scale {
            ExperimentScale::Quick => 400,
            ExperimentScale::Default => 3_000,
            ExperimentScale::Paper => 16_405,
        }
    }

    /// Node count of the Yelp-like surrogate (paper: ~120 000 users).
    pub fn yelp_size(&self) -> usize {
        match self.scale {
            ExperimentScale::Quick => 500,
            ExperimentScale::Default => 6_000,
            ExperimentScale::Paper => 120_000,
        }
    }

    /// Node count of the Twitter-like surrogate (paper: ~80 000 users).
    pub fn twitter_size(&self) -> usize {
        match self.scale {
            ExperimentScale::Quick => 500,
            ExperimentScale::Default => 5_000,
            ExperimentScale::Paper => 81_306,
        }
    }

    /// Node counts of the synthetic Barabási–Albert graphs of Figure 11
    /// (paper: 10 000 / 15 000 / 20 000).
    pub fn synthetic_sizes(&self) -> Vec<usize> {
        match self.scale {
            ExperimentScale::Quick => vec![300, 450, 600],
            ExperimentScale::Default => vec![2_000, 3_000, 4_000],
            ExperimentScale::Paper => vec![10_000, 15_000, 20_000],
        }
    }

    /// The Google-Plus-like surrogate dataset.
    pub fn google_plus(&self) -> SurrogateDataset {
        let n = self.google_plus_size();
        let graph = self.cached(&format!("google_plus_{n}"), || {
            surrogate::google_plus_like(n, seeds::GOOGLE_PLUS)
                .expect("valid surrogate size")
                .graph
        });
        SurrogateDataset {
            name: "google-plus-like".into(),
            graph,
            paper_reference: "Google Plus crawl: 16,405 users, ~4.5M edges, avg degree 560.44",
        }
    }

    /// The Yelp-like surrogate dataset.
    pub fn yelp(&self) -> SurrogateDataset {
        let n = self.yelp_size();
        let graph = self.cached(&format!("yelp_{n}"), || {
            surrogate::yelp_like(n, seeds::YELP)
                .expect("valid surrogate size")
                .graph
        });
        SurrogateDataset {
            name: "yelp-like".into(),
            graph,
            paper_reference: "Yelp academic dataset user-user graph: ~120k nodes, ~954k edges",
        }
    }

    /// The Twitter-like surrogate dataset.
    pub fn twitter(&self) -> SurrogateDataset {
        let n = self.twitter_size();
        let graph = self.cached(&format!("twitter_{n}"), || {
            surrogate::twitter_like(n, seeds::TWITTER)
                .expect("valid surrogate size")
                .graph
        });
        SurrogateDataset {
            name: "twitter-like".into(),
            graph,
            paper_reference: "SNAP ego-Twitter: ~80k nodes, ~1.7M directed edges",
        }
    }

    /// A synthetic Barabási–Albert graph with `n` nodes and `m = 5`
    /// (Figure 11 / Section 7.1), served from the binary graph catalog.
    pub fn synthetic(&self, n: usize) -> Graph {
        self.catalog(&format!("synthetic_ba_{n}"), 5, n, seeds::SYNTHETIC)
    }

    /// The small scale-free graph used for the exact-bias study
    /// (paper: 1000 nodes, 6951 edges).
    pub fn exact_bias_graph(&self) -> Graph {
        let n = match self.scale {
            ExperimentScale::Quick => 200,
            _ => 1_000,
        };
        // m = 7 gives 1000·7 − O(m²) ≈ 6979 edges, closest to the paper's 6951.
        self.catalog(&format!("exact_bias_{n}"), 7, n, seeds::EXACT_BIAS)
    }

    /// Query-cost grid (x-axis of the error-vs-cost figures), scaled to the
    /// dataset size so the largest budget explores a similar fraction of the
    /// graph as in the paper.
    pub fn query_budget_grid(&self, graph_size: usize) -> Vec<u64> {
        let max = (graph_size as f64 * 0.6) as u64;
        let points = match self.scale {
            ExperimentScale::Quick => 3,
            ExperimentScale::Default => 6,
            ExperimentScale::Paper => 10,
        };
        (1..=points)
            .map(|i| (max * i as u64) / points as u64)
            .map(|b| b.max(20))
            .collect()
    }

    /// Sample-count grid for the error-vs-samples figures (paper: up to 120).
    pub fn sample_count_grid(&self) -> Vec<usize> {
        match self.scale {
            ExperimentScale::Quick => vec![5, 10, 20],
            ExperimentScale::Default => vec![10, 20, 40, 80, 120],
            ExperimentScale::Paper => vec![10, 20, 40, 60, 80, 100, 120],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_datasets_build() {
        let reg = DatasetRegistry::new(ExperimentScale::Quick).without_cache();
        let gp = reg.google_plus();
        assert_eq!(gp.graph.node_count(), reg.google_plus_size());
        assert!(gp
            .graph
            .attributes()
            .column("self_description_words")
            .is_some());
        let yelp = reg.yelp();
        assert!(yelp.graph.attributes().column("stars").is_some());
        let tw = reg.twitter();
        assert!(tw.graph.attributes().column("in_degree").is_some());
        assert!(tw.graph.node_count() > 0);
        assert_eq!(reg.synthetic_sizes().len(), 3);
        assert!(reg.exact_bias_graph().node_count() >= 200);
    }

    #[test]
    fn grids_are_monotone_and_nonempty() {
        let reg = DatasetRegistry::new(ExperimentScale::Default).without_cache();
        let grid = reg.query_budget_grid(3_000);
        assert!(!grid.is_empty());
        assert!(grid.windows(2).all(|w| w[0] <= w[1]));
        let samples = reg.sample_count_grid();
        assert!(samples.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn synthetic_graphs_cache_as_binary_catalogs() {
        let dir =
            std::env::temp_dir().join(format!("wnw_dataset_catalog_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let reg = DatasetRegistry::new(ExperimentScale::Quick).with_cache_dir(&dir);
        let a = reg.synthetic(300);
        let spec = GraphSpec::new(
            "synthetic_ba_300",
            GraphModel::BarabasiAlbert { m: 5 },
            300,
            0,
        );
        assert!(spec.path_in(&dir).exists(), "catalog file must be written");
        // Second call loads the catalog; the uncached path regenerates.
        // All three must agree edge for edge.
        let b = reg.synthetic(300);
        let fresh = DatasetRegistry::new(ExperimentScale::Quick)
            .without_cache()
            .synthetic(300);
        for g in [&b, &fresh] {
            assert_eq!(a.node_count(), g.node_count());
            assert_eq!(a.edge_count(), g.edge_count());
            assert!((0..300).all(|v| {
                a.neighbors(wnw_graph::NodeId(v)) == g.neighbors(wnw_graph::NodeId(v))
            }));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn surrogate_snapshots_still_cache_attributes() {
        let dir =
            std::env::temp_dir().join(format!("wnw_dataset_snapshot_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let reg = DatasetRegistry::new(ExperimentScale::Quick).with_cache_dir(&dir);
        let a = reg.yelp();
        assert!(dir
            .join(format!("yelp_{}.snapshot", reg.yelp_size()))
            .exists());
        let b = reg.yelp();
        assert_eq!(
            a.graph.attributes().column("stars"),
            b.graph.attributes().column("stars"),
            "the cached snapshot must carry the attribute columns"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paper_scale_sizes_match_the_paper() {
        let reg = DatasetRegistry::new(ExperimentScale::Paper).without_cache();
        assert_eq!(reg.google_plus_size(), 16_405);
        assert_eq!(reg.yelp_size(), 120_000);
        assert_eq!(reg.twitter_size(), 81_306);
        assert_eq!(reg.synthetic_sizes(), vec![10_000, 15_000, 20_000]);
    }
}
