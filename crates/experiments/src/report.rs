//! Result tables, experiment scales, and output writers.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// How big an experiment run should be.
///
/// The paper-scale settings match Section 7.1 (16k-node Google Plus
/// surrogate, 100 repetitions per data point, ...); the default scale keeps
/// the whole suite runnable on a laptop in minutes, and the quick scale keeps
/// unit tests and Criterion benches fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExperimentScale {
    /// Tiny sizes for tests and benches (seconds).
    Quick,
    /// Laptop-friendly defaults (minutes).
    #[default]
    Default,
    /// The paper's sizes (hours).
    Paper,
}

impl ExperimentScale {
    /// Parses a scale name as used by the `repro` binary (`quick`,
    /// `default`, `paper`).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "quick" => Some(ExperimentScale::Quick),
            "default" => Some(ExperimentScale::Default),
            "paper" => Some(ExperimentScale::Paper),
            _ => None,
        }
    }

    /// Repetitions used to average each reported data point (the paper uses
    /// 100).
    pub fn repetitions(&self) -> usize {
        match self {
            ExperimentScale::Quick => 2,
            ExperimentScale::Default => 10,
            ExperimentScale::Paper => 100,
        }
    }
}

/// One value cell of a result table.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A floating-point value.
    Number(f64),
    /// A label.
    Text(String),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Number(x) => {
                if x.is_infinite() {
                    "inf".to_string()
                } else if (x.fract() == 0.0) && x.abs() < 1e15 {
                    format!("{x:.0}")
                } else {
                    format!("{x:.6}")
                }
            }
            Cell::Text(s) => s.clone(),
        }
    }
}

impl From<f64> for Cell {
    fn from(x: f64) -> Self {
        Cell::Number(x)
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

/// A named table of results (one CSV file / markdown table per instance).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Identifier used for the output file name (e.g. `fig06a_avg_degree_srw`).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (each row has `columns.len()` entries).
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the number of columns.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in table {}",
            self.name
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| c.render()).collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| c.render()).collect();
            let _ = writeln!(out, "| {} |", line.join(" | "));
        }
        out
    }

    /// Extracts a numeric column by header name (non-numeric cells are
    /// skipped), useful for tests and summaries.
    pub fn numeric_column(&self, header: &str) -> Vec<f64> {
        let Some(idx) = self.columns.iter().position(|c| c == header) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|row| match &row[idx] {
                Cell::Number(x) => Some(*x),
                Cell::Text(_) => None,
            })
            .collect()
    }
}

/// The result of reproducing one figure or table of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// Identifier ("fig06", "table1", ...).
    pub id: String,
    /// Human-readable description of what the paper artefact shows.
    pub title: String,
    /// The regenerated data series.
    pub tables: Vec<Table>,
    /// Free-form notes (e.g. observed vs expected shape).
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Creates an empty result.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        FigureResult {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Adds a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Writes one CSV per table plus a markdown summary into `dir`.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for table in &self.tables {
            let path = dir.join(format!("{}_{}.csv", self.id, table.name));
            std::fs::write(path, table.to_csv())?;
        }
        let mut md = String::new();
        let _ = writeln!(md, "# {} — {}\n", self.id, self.title);
        for note in &self.notes {
            let _ = writeln!(md, "> {note}\n");
        }
        for table in &self.tables {
            let _ = writeln!(md, "## {}\n", table.name);
            let _ = writeln!(md, "{}", table.to_markdown());
        }
        std::fs::write(dir.join(format!("{}.md", self.id)), md)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_repetitions() {
        assert_eq!(
            ExperimentScale::parse("quick"),
            Some(ExperimentScale::Quick)
        );
        assert_eq!(
            ExperimentScale::parse("Default"),
            Some(ExperimentScale::Default)
        );
        assert_eq!(
            ExperimentScale::parse("PAPER"),
            Some(ExperimentScale::Paper)
        );
        assert_eq!(ExperimentScale::parse("huge"), None);
        assert!(ExperimentScale::Paper.repetitions() > ExperimentScale::Quick.repetitions());
    }

    #[test]
    fn table_round_trip_and_rendering() {
        let mut t = Table::new("demo", &["x", "y", "label"]);
        t.push_row(vec![1.0.into(), 0.5.into(), "SRW".into()]);
        t.push_row(vec![2.0.into(), f64::INFINITY.into(), "WE".into()]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.starts_with("x,y,label\n"));
        assert!(csv.contains("1,0.500000,SRW"));
        assert!(csv.contains("inf"));
        let md = t.to_markdown();
        assert!(md.contains("| x | y | label |"));
        assert_eq!(t.numeric_column("x"), vec![1.0, 2.0]);
        assert_eq!(t.numeric_column("label"), Vec::<f64>::new());
        assert_eq!(t.numeric_column("missing"), Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec![1.0.into()]);
    }

    #[test]
    fn figure_result_writes_files() {
        let mut result = FigureResult::new("figtest", "unit-test figure");
        let mut t = Table::new("series", &["x", "y"]);
        t.push_row(vec![1.0.into(), 2.0.into()]);
        result.push_table(t);
        result.push_note("shape matches");
        let dir = std::env::temp_dir().join("wnw_report_test");
        result.write_to_dir(&dir).unwrap();
        assert!(dir.join("figtest_series.csv").exists());
        assert!(dir.join("figtest.md").exists());
        let md = std::fs::read_to_string(dir.join("figtest.md")).unwrap();
        assert!(md.contains("unit-test figure"));
        assert!(md.contains("shape matches"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
