//! # wnw-experiments
//!
//! Experiment harness reproducing every table and figure of *"Walk, Not
//! Wait"* (Nazi et al., VLDB 2015). Each figure/table has a module under
//! [`figures`] exposing a `run(scale) -> FigureResult` function that
//! regenerates the corresponding data series; the `repro` binary drives them
//! and writes CSV/markdown output.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`figures::fig01`] | Figure 1 — min/max sampling probability vs walk length |
//! | [`figures::fig02`] | Figure 2 — IDEAL-WALK query cost per sample vs walk length |
//! | [`figures::fig03`] | Figure 3 — query-cost saving vs graph size |
//! | [`figures::fig05`] | Figure 5 — steps per sample vs cycle diameter (limitation study) |
//! | [`figures::fig06`] | Figure 6 — Google Plus: relative error vs query cost |
//! | [`figures::fig07`] | Figure 7 — Yelp: relative error vs query cost |
//! | [`figures::fig08`] | Figure 8 — Twitter: relative error vs query cost |
//! | [`figures::fig09`] | Figure 9 — variance-reduction ablation (WE/WE-None/WE-Crawl/WE-Weighted) |
//! | [`figures::fig10`] | Figure 10 — relative error vs number of samples |
//! | [`figures::fig11`] | Figure 11 — synthetic graphs: scaling with graph size |
//! | [`figures::fig12`] | Figure 12 + Table 1 — exact sampling-distribution bias |
//!
//! The real Google Plus / Yelp / Twitter crawls are not redistributable, so
//! [`datasets`] builds surrogate graphs matching the properties the samplers
//! interact with (degree distribution shape, density, diameter, attribute
//! variance); see `DESIGN.md` for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod figures;
pub mod measures;
pub mod report;
pub mod runner;

pub use datasets::DatasetRegistry;
pub use measures::Aggregate;
pub use report::{ExperimentScale, FigureResult, Table};
pub use runner::SamplerKind;
