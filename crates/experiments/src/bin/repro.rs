//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale quick|default|paper] [--out DIR] [--list] [FIGURE ...]
//! ```
//!
//! With no figure arguments every figure is regenerated. Results are written
//! as CSV files plus a markdown summary per figure under the output
//! directory (default `./results`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use wnw_experiments::figures;
use wnw_experiments::report::ExperimentScale;

struct Options {
    scale: ExperimentScale,
    out_dir: PathBuf,
    list: bool,
    figures: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        scale: ExperimentScale::Default,
        out_dir: PathBuf::from("results"),
        list: false,
        figures: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().ok_or("--scale requires a value")?;
                options.scale = ExperimentScale::parse(&value)
                    .ok_or_else(|| format!("unknown scale `{value}` (quick|default|paper)"))?;
            }
            "--out" => {
                options.out_dir = PathBuf::from(args.next().ok_or("--out requires a value")?);
            }
            "--list" => options.list = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale quick|default|paper] [--out DIR] [--list] [FIGURE ...]\n\
                     figures: {}",
                    figures::all_figures().iter().map(|(id, _)| *id).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            other => options.figures.push(other.to_string()),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let all = figures::all_figures();
    if options.list {
        for (id, _) in &all {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<_> = if options.figures.is_empty() {
        all
    } else {
        let mut chosen = Vec::new();
        for wanted in &options.figures {
            match figures::all_figures()
                .into_iter()
                .find(|(id, _)| id == wanted)
            {
                Some(entry) => chosen.push(entry),
                None => {
                    eprintln!("error: unknown figure `{wanted}` (use --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        chosen
    };

    println!(
        "reproducing {} figure(s) at {:?} scale into {}",
        selected.len(),
        options.scale,
        options.out_dir.display()
    );
    for (id, run) in selected {
        let started = Instant::now();
        print!("  {id} ... ");
        let result = run(options.scale);
        if let Err(e) = result.write_to_dir(&options.out_dir) {
            eprintln!("failed to write results: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "done in {:.1?} ({} tables)",
            started.elapsed(),
            result.tables.len()
        );
        for note in &result.notes {
            println!("      note: {note}");
        }
    }
    println!("results written to {}", options.out_dir.display());
    ExitCode::SUCCESS
}
