//! The AVG aggregates whose estimation error measures sample quality
//! (Section 7.1).
//!
//! Each aggregate defines (a) the value it reads off a single sampled node
//! and (b) its exact population average, computed once per dataset from the
//! ground-truth graph. Per-node values are evaluated against the ground
//! truth (not charged as queries): the paper treats them as attributes
//! retrieved with the sampled node's profile, and charging them identically
//! for every sampler keeps the query-cost comparison fair.

use wnw_graph::{metrics, Graph, NodeId};

/// An AVG aggregate over nodes of the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aggregate {
    /// Average node degree (Figures 6a/6c, 7a, 11).
    Degree,
    /// Average of a named node attribute (self-description words, stars,
    /// in/out-degree; Figures 6b/6d, 7b, 8a/8b).
    NodeAttribute(String),
    /// Average local clustering coefficient (Figures 7d, 8c/8d).
    LocalClustering,
    /// Average shortest-path length, expressed per node as the mean BFS
    /// distance to every other reachable node (Figures 7c, 8).
    MeanShortestPath,
}

impl Aggregate {
    /// Short name used in output tables.
    pub fn name(&self) -> String {
        match self {
            Aggregate::Degree => "avg_degree".to_string(),
            Aggregate::NodeAttribute(attr) => format!("avg_{attr}"),
            Aggregate::LocalClustering => "avg_local_clustering".to_string(),
            Aggregate::MeanShortestPath => "avg_shortest_path".to_string(),
        }
    }

    /// The value this aggregate reads off one sampled node.
    pub fn node_value(&self, graph: &Graph, v: NodeId) -> f64 {
        match self {
            Aggregate::Degree => graph.degree(v) as f64,
            Aggregate::NodeAttribute(attr) => graph.attribute(attr, v).unwrap_or(0.0),
            Aggregate::LocalClustering => metrics::local_clustering_coefficient(graph, v),
            Aggregate::MeanShortestPath => {
                let dist = metrics::bfs_distances(graph, v);
                let mut total = 0u64;
                let mut count = 0u64;
                for (u, &d) in dist.iter().enumerate() {
                    if d != metrics::UNREACHABLE && u != v.index() {
                        total += d as u64;
                        count += 1;
                    }
                }
                if count == 0 {
                    0.0
                } else {
                    total as f64 / count as f64
                }
            }
        }
    }

    /// The exact population average (the denominator of the relative error).
    ///
    /// For [`Aggregate::MeanShortestPath`] on graphs above a few thousand
    /// nodes the exact all-pairs value is replaced by a 200-source BFS
    /// estimate, which is accurate to well under the error levels the
    /// figures report.
    pub fn ground_truth(&self, graph: &Graph) -> f64 {
        match self {
            Aggregate::Degree => graph.average_degree(),
            Aggregate::NodeAttribute(attr) => graph
                .attributes()
                .column(attr)
                .map(|c| c.mean())
                .unwrap_or(0.0),
            Aggregate::LocalClustering => metrics::average_local_clustering(graph),
            Aggregate::MeanShortestPath => {
                if graph.node_count() <= 2_000 {
                    metrics::average_shortest_path(graph)
                } else {
                    metrics::sampled_average_shortest_path(graph, 200, 0xACC_u64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_graph::generators::classic::{complete, path};
    use wnw_graph::generators::random::barabasi_albert;

    #[test]
    fn degree_aggregate() {
        let g = complete(5);
        assert_eq!(Aggregate::Degree.node_value(&g, NodeId(0)), 4.0);
        assert_eq!(Aggregate::Degree.ground_truth(&g), 4.0);
        assert_eq!(Aggregate::Degree.name(), "avg_degree");
    }

    #[test]
    fn attribute_aggregate() {
        let mut g = path(3);
        g.set_attribute("stars", vec![1.0, 3.0, 5.0]).unwrap();
        let agg = Aggregate::NodeAttribute("stars".to_string());
        assert_eq!(agg.node_value(&g, NodeId(2)), 5.0);
        assert_eq!(agg.ground_truth(&g), 3.0);
        assert_eq!(agg.name(), "avg_stars");
        // Missing attribute degrades to zero rather than panicking.
        assert_eq!(
            Aggregate::NodeAttribute("x".into()).node_value(&g, NodeId(0)),
            0.0
        );
    }

    #[test]
    fn clustering_aggregate() {
        let g = complete(4);
        assert_eq!(Aggregate::LocalClustering.node_value(&g, NodeId(1)), 1.0);
        assert_eq!(Aggregate::LocalClustering.ground_truth(&g), 1.0);
    }

    #[test]
    fn shortest_path_aggregate() {
        let g = path(3);
        // Node 0: distances 1 and 2 -> mean 1.5; node 1: 1 and 1 -> 1.0.
        assert_eq!(Aggregate::MeanShortestPath.node_value(&g, NodeId(0)), 1.5);
        assert_eq!(Aggregate::MeanShortestPath.node_value(&g, NodeId(1)), 1.0);
        let truth = Aggregate::MeanShortestPath.ground_truth(&g);
        assert!((truth - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_node_mean_averages_to_population_mean() {
        let g = barabasi_albert(120, 3, 3).unwrap();
        let truth = Aggregate::MeanShortestPath.ground_truth(&g);
        let avg_of_node_values: f64 = g
            .nodes()
            .map(|v| Aggregate::MeanShortestPath.node_value(&g, v))
            .sum::<f64>()
            / g.node_count() as f64;
        assert!((truth - avg_of_node_values).abs() < 1e-9);
    }
}
