//! Chaos end-to-end: a mid-job fault burst turns the job into a
//! *degraded partial* — it completes, keeps the samples it collected,
//! publishes its walks to the shared history, and a later job seeds off
//! them. Degradation costs completeness, never the job and never the
//! cross-job reuse lever.

use wnw_access::{FaultProfile, FaultyNetwork, ResilientNetwork, RetryPolicy, SimulatedOsn};
use wnw_engine::SampleJob;
use wnw_graph::generators::random::barabasi_albert;
use wnw_graph::NodeId;
use wnw_mcmc::RandomWalkKind;
use wnw_service::{HistoryPolicy, JobStatus, SampleRequest, SamplingService};

const GRAPH_SEED: u64 = 0xD15E_A5ED;
const FAULT_SEED: u64 = 43;

fn chaos_service() -> SamplingService<ResilientNetwork<FaultyNetwork<SimulatedOsn>>> {
    // Just enough blackout coverage that some — but not all — of a
    // multi-walker job's walkers walk into a blacked-out node mid-flight;
    // everything else in the chaos profile recovers within the retry
    // budget. (At this seed, two of four walkers degrade.)
    let profile = FaultProfile {
        blackout_fraction: 0.005,
        ..FaultProfile::chaos()
    };
    let osn = ResilientNetwork::new(
        FaultyNetwork::new(
            SimulatedOsn::new(barabasi_albert(300, 3, GRAPH_SEED).unwrap()),
            FAULT_SEED,
            profile,
        ),
        RetryPolicy::DEFAULT.without_breaker(),
        FAULT_SEED,
    );
    SamplingService::builder(osn).pool_threads(1).build()
}

fn job() -> SampleJob {
    SampleJob::walk_estimate(RandomWalkKind::Simple, 16, 9)
        .with_walkers(4)
        .with_diameter_estimate(4)
        .with_start_node(NodeId(0))
}

#[test]
fn degraded_partial_publishes_history_and_seeds_a_later_job() {
    let service = chaos_service();

    // Job A: publishes to the shared history, loses walkers to the fault
    // burst mid-job — and still completes with the samples it got.
    let a = service
        .submit(SampleRequest::new(job()).with_history_policy(HistoryPolicy::SharedPublish))
        .unwrap();
    let (samples, outcome) = a.stream.collect_all();
    let outcome = outcome.expect("job A must reach a terminal event");
    assert_eq!(outcome.status, JobStatus::Completed);
    assert!(outcome.degraded, "the fault burst must degrade job A");
    assert!(outcome.degraded_walkers >= 1);
    assert!(
        (outcome.degraded_walkers as usize) < 4,
        "a partial, not a wipeout — some walkers must survive"
    );
    assert!(
        !samples.is_empty(),
        "samples collected before the burst are kept"
    );

    // Job B: same history key (start node + walk kind), read-only. The
    // degraded job's walks must already be in the store for B to seed
    // off, because history publication happens before the job finishes.
    let b = service
        .submit(SampleRequest::new(job()).with_history_policy(HistoryPolicy::SharedReadOnly))
        .unwrap();
    let (_, outcome_b) = b.stream.collect_all();
    let outcome_b = outcome_b.expect("job B must finish");
    assert_eq!(outcome_b.status, JobStatus::Completed);

    let history = service.history_stats();
    assert!(
        history.hits >= 1,
        "job B must hit the snapshot job A published"
    );
    assert!(
        history.reused_walks >= 1,
        "job B must reuse at least one of the degraded job's walks"
    );

    // Job B walks the same chaotic network (with the injector's fault
    // stream advanced past job A), so it may or may not degrade too —
    // the service tallies must agree with whatever actually happened.
    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_completed, 2);
    assert_eq!(
        metrics.jobs_degraded,
        1 + u64::from(outcome_b.degraded),
        "job A degraded; job B counts iff its outcome says so"
    );
    assert_eq!(
        metrics.walkers_degraded,
        outcome.degraded_walkers + outcome_b.degraded_walkers
    );
}
