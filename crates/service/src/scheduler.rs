//! The batched multi-job scheduler.
//!
//! One scheduler thread owns every admitted job and advances them in
//! **scheduling cycles**: each cycle walks the active set in admission
//! order and hands every job up to [`Priority::weight`] rounds, where one
//! round moves every live walker of that job one sample forward on the
//! service's shared, persistent [`WorkerPool`] (see
//! [`JobDriver::step_round`]) — one pool serves every in-flight job, so no
//! round ever spawns an OS thread. Round interleaving is what keeps the
//! service fair — a 10 000-sample job advances one round, then a 10-sample
//! job advances one round — and priority weights tilt the ratio without
//! ever starving anyone.
//!
//! **Cost-weighted fairness.** Rounds are not equal: a 16-walker crawl of a
//! hub-heavy region spends far more queries per round than a 1-walker job.
//! Each cycle therefore scales a job's round allotment by the ratio of the
//! *cheapest* active job's measured per-round query cost to its own (see
//! [`cost_weighted_rounds`]): the cheapest job keeps its full priority
//! weight while proportionally costlier jobs are throttled toward one round
//! per cycle, so heterogeneous jobs share the pool by measured work, not by
//! round count. Every active job still advances at least one round per
//! cycle — fairness never becomes starvation — and the weighting only
//! re-times rounds, so it cannot change any job's sample multiset.
//!
//! Determinism: the scheduler decides only *when* a job's walkers run,
//! never what they compute. A walker's draws depend on its own RNG stream,
//! its own metered budget view, and cache answers that are pure functions
//! of the node asked — so a request's accepted-sample multiset is the same
//! at any pool width and under any co-load. Cross-job state is shared only
//! where sharing is free of interference: the neighbor cache (each node
//! paid for once, service-wide) and the underlying network handle. Walk
//! history crosses jobs only through the epoch-versioned
//! [`HistoryStore`]: a job under a shared [`history
//! policy`](crate::SampleRequest::history_policy) reads an *immutable*
//! snapshot frozen at admission and publishes its own walks only at reap,
//! so a running job never observes mid-job publications — results under
//! shared policies are deterministic given an admission order, and the
//! default isolated policy keeps today's co-load invariance untouched.
//!
//! Cancellation (explicit, deadline, or the consumer dropping its stream)
//! is checked before every round; a stopped job keeps the samples it
//! already delivered and refunds its unused budget in the outcome.

use crate::metrics::ServiceMetrics;
use crate::request::{JobId, Priority, SampleRequest};
use crate::stream::{JobOutcome, JobStatus, ProgressUpdate, SampleEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wnw_access::cached::CachedNetwork;
use wnw_access::counter::QueryCounter;
use wnw_access::interface::{SocialNetwork, ThreadedNetwork};
use wnw_access::metered::MeteredNetwork;
use wnw_engine::{history_key_of, HistoryKey, HistoryStore, JobDriver};
use wnw_graph::NodeId;
use wnw_runtime::WorkerPool;
use wnw_telemetry::{TraceEventKind, TraceLog};

/// An admitted request on its way to the scheduler thread.
pub(crate) struct Submission {
    pub id: JobId,
    pub request: SampleRequest,
    pub events: Sender<SampleEvent>,
    pub cancel: Arc<AtomicBool>,
    pub submitted_at: Instant,
}

impl Submission {
    /// Absolute deadline, if one fits on the clock. A deadline so far out
    /// that `Instant + Duration` overflows (e.g. `Duration::MAX`) is
    /// treated as "no deadline" instead of panicking the scheduler thread.
    fn deadline_at(&self) -> Option<Instant> {
        self.request
            .deadline
            .and_then(|d| self.submitted_at.checked_add(d))
    }
}

/// Every this-many-th promotion takes the oldest pending submission
/// regardless of priority (queue aging — bounds how long a low-priority
/// job can be passed over by later high-priority arrivals).
const AGED_PROMOTION_STRIDE: u64 = 4;

/// The pending queue, indexed by priority so promotion never scans.
///
/// Submissions live in one FIFO bucket per [`Priority`], each entry stamped
/// with a global arrival sequence number. The promotion sweep used to run an
/// O(pending) `max_by` over the whole queue per promotion — under loadgen's
/// burst presets the queue holds hundreds of jobs, making each promotion a
/// linear rescan of state that never changed. With buckets, both promotion
/// policies are O(1):
///
/// * **priority pick** — front of the highest-priority non-empty bucket
///   (FIFO within a priority, because pushes append in arrival order);
/// * **aged pick** — the front with the smallest sequence number across the
///   (at most 3) buckets, i.e. the globally oldest submission.
///
/// Generic over the payload so the equivalence tests below can drive it
/// with plain integers.
struct PendingQueue<T> {
    /// One FIFO per priority, indexed by [`bucket_index`].
    buckets: [VecDeque<(u64, T)>; Priority::COUNT],
    /// Next arrival sequence number (total pushes so far).
    next_seq: u64,
}

/// The bucket a priority maps to, ordered so a higher index means a higher
/// priority. Exhaustive match: adding a `Priority` variant without growing
/// [`Priority::COUNT`] fails to compile here.
fn bucket_index(priority: Priority) -> usize {
    match priority {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

impl<T> PendingQueue<T> {
    fn new() -> Self {
        PendingQueue {
            buckets: std::array::from_fn(|_| VecDeque::new()),
            next_seq: 0,
        }
    }

    /// Total queued submissions (used by the equivalence tests).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.buckets.iter().map(VecDeque::len).sum()
    }

    fn is_empty(&self) -> bool {
        self.buckets.iter().all(VecDeque::is_empty)
    }

    /// Appends `item` at its priority's FIFO tail, stamping arrival order.
    fn push(&mut self, priority: Priority, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buckets[bucket_index(priority)].push_back((seq, item));
    }

    /// Removes and returns the next submission to promote: the oldest
    /// overall when `aged`, otherwise the oldest of the highest non-empty
    /// priority. O(1) either way.
    fn pop_next(&mut self, aged: bool) -> Option<T> {
        let bucket = if aged {
            // Globally oldest = smallest sequence number among the fronts.
            self.buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| b.front().map(|(seq, _)| (*seq, i)))
                .min()
                .map(|(_, i)| i)?
        } else {
            (0..self.buckets.len())
                .rev()
                .find(|&i| !self.buckets[i].is_empty())?
        };
        self.buckets[bucket].pop_front().map(|(_, item)| item)
    }

    /// Removes every item matching `pred`, returning them in arrival order
    /// (the order the old linear reap walked them in).
    fn extract_if<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> Vec<T> {
        let mut removed: Vec<(u64, T)> = Vec::new();
        for bucket in &mut self.buckets {
            let mut kept = VecDeque::with_capacity(bucket.len());
            for (seq, item) in bucket.drain(..) {
                if pred(&item) {
                    removed.push((seq, item));
                } else {
                    kept.push_back((seq, item));
                }
            }
            *bucket = kept;
        }
        removed.sort_by_key(|(seq, _)| *seq);
        removed.into_iter().map(|(_, item)| item).collect()
    }
}

/// How long a gated (paused) scheduler parks between wake-ups — also the
/// worst-case latency for noticing a resume.
const PAUSE_POLL: Duration = Duration::from_millis(25);

/// Scheduler-side tuning knobs (a copy of the service config).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SchedulerConfig {
    /// Jobs interleaved concurrently; admitted jobs beyond this wait queued.
    pub max_active: usize,
    /// Whether per-round telemetry (the round-duration histogram) is
    /// recorded. Job-level histograms and counters are always on — only
    /// this per-round timing sits on the hot path.
    pub telemetry: bool,
}

/// One job holding walker slots.
struct ActiveJob {
    id: JobId,
    driver: JobDriver<'static>,
    /// Job-level metering view over the shared cache: `unique_nodes` is
    /// what this request would have cost in isolation.
    job_counter: Arc<QueryCounter>,
    events: Sender<SampleEvent>,
    cancel: Arc<AtomicBool>,
    priority: Priority,
    deadline: Option<Instant>,
    submitted_at: Instant,
    /// Admission→first-round wait (time spent queued before promotion).
    queue_wait: Duration,
    budget: Option<u64>,
    requested: usize,
    /// Where to publish the job's merged walk history at reap (`Some` only
    /// for [`wnw_engine::HistoryPolicy::SharedPublish`] jobs whose spec can
    /// exchange history).
    publish_key: Option<HistoryKey>,
    /// Samples actually handed to the consumer's channel (what the
    /// service-level `samples_delivered` counter reports — a hung-up
    /// consumer stops this short of the samples the job produced).
    delivered: u64,
    /// Early-terminal state (cancelled / deadline / consumer hang-up); the
    /// normal completion and failure states are decided at finalization.
    status: Option<JobStatus>,
    /// Unique-node cost at the last pumped round — the per-round query
    /// delta reported in `RoundCompleted` trace events.
    last_round_cost: u64,
}

impl ActiveJob {
    /// Measured query cost per completed round (unique nodes this job's
    /// metered view has paid, averaged over its rounds), floored at one so
    /// cache-riding jobs cannot divide the weighting by zero. `None` until
    /// the job has completed a round — a fresh job has no measurement yet
    /// and keeps its full priority weight.
    fn mean_round_cost(&self) -> Option<f64> {
        let rounds = self.driver.rounds();
        if rounds == 0 {
            return None;
        }
        Some((self.job_counter.stats().unique_nodes as f64 / rounds as f64).max(1.0))
    }

    fn terminal(&self) -> bool {
        // A poisoned driver (fatal walker error or panic) ends the job at
        // the next round boundary — the remaining healthy walkers' output
        // would be discarded anyway, so their rounds are not worth running.
        self.status.is_some() || self.driver.is_done() || self.driver.poisoned()
    }

    /// Polls the cooperative stop conditions (round-boundary granularity).
    fn check_interrupts(&mut self) {
        if self.status.is_some() {
            return;
        }
        if self.cancel.load(Ordering::Relaxed) {
            self.status = Some(JobStatus::Cancelled);
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.status = Some(JobStatus::DeadlineExpired);
        }
    }

    /// Streams the samples the last round produced (walker order) plus a
    /// progress snapshot. A closed channel means the consumer hung up: the
    /// job is cancelled so its walker slots and budget are released.
    ///
    /// Telemetry rides the work already done here: the first sample that
    /// reaches the consumer stamps the time-to-first-sample histogram and a
    /// `SamplePublished` trace event, and the round's unique-node query
    /// delta goes out as a `RoundCompleted` event.
    fn pump(
        &mut self,
        pool: wnw_access::counter::QueryStats,
        metrics: &ServiceMetrics,
        trace: &TraceLog,
    ) {
        let mut hung_up = false;
        let events = &self.events;
        let delivered = &mut self.delivered;
        let had_delivered = *delivered > 0;
        self.driver.drain_new_samples(|walker, record| {
            let sent = events
                .send(SampleEvent::Sample {
                    walker,
                    record: *record,
                })
                .is_ok();
            hung_up |= !sent;
            *delivered += u64::from(sent);
        });
        if !had_delivered && self.delivered > 0 {
            metrics.on_first_sample(self.submitted_at.elapsed());
            trace.record(self.id.0, TraceEventKind::SamplePublished);
        }
        let query_cost = self.job_counter.stats().unique_nodes;
        trace.record(
            self.id.0,
            TraceEventKind::RoundCompleted {
                queries: query_cost.saturating_sub(self.last_round_cost),
            },
        );
        self.last_round_cost = query_cost;
        let update = ProgressUpdate {
            rounds: self.driver.rounds(),
            samples: self.driver.samples_collected(),
            requested: self.requested,
            live_walkers: self.driver.live_walkers(),
            budget_consumed: self.driver.budget_consumed(),
            query_cost,
            pool,
        };
        hung_up |= self.events.send(SampleEvent::Progress(update)).is_err();
        if hung_up && self.status.is_none() {
            self.status = Some(JobStatus::Cancelled);
        }
    }
}

/// The scheduler: owns the submission queue and the active set, runs on a
/// dedicated thread until the service is dropped and every job has drained.
pub(crate) struct Scheduler<N: ThreadedNetwork + 'static> {
    cache: Arc<CachedNetwork<Arc<N>>>,
    metrics: Arc<ServiceMetrics>,
    config: SchedulerConfig,
    /// The service's one persistent worker pool: every round of every
    /// in-flight job executes on it, so no round spawns an OS thread.
    pool: Arc<WorkerPool>,
    /// The service-scoped cross-job history store: shared-policy jobs
    /// snapshot it at admission and publish into it at reap.
    history: Arc<HistoryStore>,
    /// The service's per-job lifecycle trace ring (capacity 0 when tracing
    /// is off — every `record` is then a branch-and-return).
    trace: Arc<TraceLog>,
    /// The network's seed node (every walker's start), resolved once — the
    /// start component of every job's [`HistoryKey`].
    seed_node: NodeId,
    paused: Arc<AtomicBool>,
    rx: Receiver<Submission>,
    rx_open: bool,
    pending: PendingQueue<Submission>,
    active: Vec<ActiveJob>,
    /// Lifetime promotion count, driving the queue-aging stride.
    promotions: u64,
}

impl<N: ThreadedNetwork + 'static> Scheduler<N> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cache: Arc<CachedNetwork<Arc<N>>>,
        metrics: Arc<ServiceMetrics>,
        config: SchedulerConfig,
        pool: Arc<WorkerPool>,
        history: Arc<HistoryStore>,
        trace: Arc<TraceLog>,
        paused: Arc<AtomicBool>,
        rx: Receiver<Submission>,
    ) -> Self {
        let seed_node = cache.seed_node();
        Scheduler {
            cache,
            metrics,
            config,
            pool,
            history,
            trace,
            seed_node,
            paused,
            rx,
            rx_open: true,
            pending: PendingQueue::new(),
            active: Vec::new(),
            promotions: 0,
        }
    }

    /// Runs until the submission channel is closed *and* every admitted job
    /// has reached a terminal state (graceful drain).
    pub fn run(mut self) {
        loop {
            self.ingest();
            self.reap_pending();
            if self.paused.load(Ordering::Relaxed) {
                if !self.rx_open && self.pending.is_empty() && self.active.is_empty() {
                    break;
                }
                // Gated: park on the submission channel (or sleep, once it
                // is closed) instead of busy-spinning; the bound is also
                // the worst-case latency for noticing a resume.
                if self.rx_open {
                    match self.rx.recv_timeout(PAUSE_POLL) {
                        Ok(submission) => self.enqueue(submission),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => self.rx_open = false,
                    }
                } else {
                    std::thread::sleep(PAUSE_POLL);
                }
                continue;
            }
            self.promote();
            if self.active.is_empty() {
                if self.pending.is_empty() {
                    if !self.rx_open {
                        break;
                    }
                    // Idle: block until the next submission (or shutdown).
                    match self.rx.recv() {
                        Ok(submission) => self.enqueue(submission),
                        Err(_) => self.rx_open = false,
                    }
                }
                continue;
            }
            self.cycle();
        }
    }

    /// Drains buffered submissions without blocking.
    fn ingest(&mut self) {
        while self.rx_open {
            match self.rx.try_recv() {
                Ok(submission) => self.enqueue(submission),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => self.rx_open = false,
            }
        }
    }

    /// Files a submission into its priority bucket.
    fn enqueue(&mut self, submission: Submission) {
        let priority = submission.request.priority;
        self.pending.push(priority, submission);
    }

    /// Retires queued jobs that died before reaching a walker slot —
    /// cancelled by the caller or past their deadline — so they release
    /// their admission capacity immediately instead of holding it until a
    /// scheduler slot frees up, and never pay for a walker-pool build.
    fn reap_pending(&mut self) {
        let dead = self.pending.extract_if(|submission| {
            submission.cancel.load(Ordering::Relaxed)
                || submission
                    .deadline_at()
                    .is_some_and(|d| Instant::now() >= d)
        });
        for submission in dead {
            // Cancellation wins if both conditions hold (same precedence as
            // the matching check over active jobs).
            let status = if submission.cancel.load(Ordering::Relaxed) {
                JobStatus::Cancelled
            } else {
                JobStatus::DeadlineExpired
            };
            // Pair the gauges exactly like a scheduled job's lifecycle. The
            // job never reached a walker slot, so its whole queued life is
            // its queue wait.
            let queue_wait = submission.submitted_at.elapsed();
            self.metrics.on_start(queue_wait);
            let mut outcome = JobOutcome {
                id: submission.id,
                status,
                samples: 0,
                requested: submission.request.job.samples,
                query_cost: 0,
                budget_consumed: 0,
                budget_refunded: submission.request.job.budget.unwrap_or(0),
                budget_exhausted: false,
                degraded: false,
                degraded_walkers: 0,
                rounds: 0,
                latency: submission.submitted_at.elapsed(),
                queue_wait,
                finish_index: 0,
            };
            outcome.finish_index = self.metrics.on_finish(&outcome, 0);
            self.trace.record(
                submission.id.0,
                TraceEventKind::Finished {
                    status: outcome.status.label(),
                },
            );
            let _ = submission.events.send(SampleEvent::Done(outcome));
        }
    }

    /// Moves queued jobs into the active set while slots are free — highest
    /// priority first, arrival order within a priority, with **aging**:
    /// every [`AGED_PROMOTION_STRIDE`]-th promotion takes the oldest
    /// pending submission regardless of priority, so a low-priority job's
    /// wait in the queue is bounded even under a sustained stream of
    /// higher-priority arrivals.
    fn promote(&mut self) {
        while self.active.len() < self.config.max_active.max(1) && !self.pending.is_empty() {
            let aged = self.promotions % AGED_PROMOTION_STRIDE == AGED_PROMOTION_STRIDE - 1;
            let submission = self.pending.pop_next(aged).expect("pending is non-empty");
            self.promotions += 1;
            let queue_wait = submission.submitted_at.elapsed();
            self.metrics.on_start(queue_wait);
            let job = self.admit(submission, queue_wait);
            self.active.push(job);
        }
    }

    /// Builds the walker pool of an admitted job over the shared cache,
    /// behind a fresh job-level metering view (per-request cost isolation
    /// over pool-wide sharing).
    ///
    /// This is also the **snapshot-on-admit** point of the cross-job
    /// history epoch rule: a job under a reading policy takes its frozen
    /// [`wnw_engine::FrozenHistory`] here, exactly once — publications that
    /// land while it runs are never observed, so its results are a pure
    /// function of (job, snapshot).
    fn admit(&self, submission: Submission, queue_wait: Duration) -> ActiveJob {
        self.trace.record(submission.id.0, TraceEventKind::Admitted);
        let job_view = MeteredNetwork::new(Arc::clone(&self.cache));
        let job_counter = job_view.counter_handle();
        let policy = submission.request.history_policy;
        let start = submission.request.job.start_node.unwrap_or(self.seed_node);
        let key = history_key_of(start, &submission.request.job);
        let read_key = (policy.reads()).then_some(key.as_ref()).flatten();
        let frozen = read_key.and_then(|key| self.history.snapshot(key));
        if read_key.is_some() {
            // A reading policy either found a published history or it did
            // not — either way the lookup is a trace-worthy decision point.
            self.trace.record(
                submission.id.0,
                if frozen.is_some() {
                    TraceEventKind::HistoryHit
                } else {
                    TraceEventKind::HistoryMiss
                },
            );
        }
        let seed_history = frozen.map(|frozen| (frozen, submission.request.reuse_correction));
        let driver = JobDriver::with_seed_history(job_view, &submission.request.job, seed_history);
        let deadline = submission.deadline_at();
        ActiveJob {
            id: submission.id,
            driver,
            job_counter,
            delivered: 0,
            events: submission.events,
            cancel: submission.cancel,
            priority: submission.request.priority,
            deadline,
            submitted_at: submission.submitted_at,
            queue_wait,
            budget: submission.request.job.budget,
            requested: submission.request.job.samples,
            publish_key: policy.publishes().then_some(key).flatten(),
            status: None,
            last_round_cost: 0,
        }
    }

    /// One scheduling cycle: every active job advances up to its
    /// cost-weighted round allotment (priority weight, normalized by the
    /// job's measured per-round query cost — see [`cost_weighted_rounds`]),
    /// then terminal jobs are finalized and retired.
    fn cycle(&mut self) {
        // The cheapest measured per-round cost in this cycle's active set
        // is the normalization baseline: that job keeps its full weight.
        let cheapest = self
            .active
            .iter()
            .filter_map(ActiveJob::mean_round_cost)
            .fold(None, |best: Option<f64>, cost| {
                Some(best.map_or(cost, |b| b.min(cost)))
            });
        for job in &mut self.active {
            let allotment =
                cost_weighted_rounds(job.priority.weight(), job.mean_round_cost(), cheapest);
            for _ in 0..allotment {
                job.check_interrupts();
                if job.terminal() {
                    break;
                }
                if job.driver.rounds() == 0 {
                    self.trace.record(job.id.0, TraceEventKind::FirstRound);
                }
                // Per-round timing is the one telemetry cost on the hot
                // path; it is gated so a latency-critical deployment can
                // shed the two clock reads per round.
                let round_start = self.config.telemetry.then(Instant::now);
                job.driver.step_round(&self.pool);
                if let Some(start) = round_start {
                    self.metrics.on_round(start.elapsed());
                }
                job.pump(self.cache.query_stats(), &self.metrics, &self.trace);
            }
        }
        let jobs = std::mem::take(&mut self.active);
        for job in jobs {
            if job.terminal() {
                self.finalize(job);
            } else {
                self.active.push(job);
            }
        }
    }

    /// Tears a terminal job down: resolves its status, sends the `Done`
    /// event, and records the outcome in the service metrics. This is the
    /// **publication** point of the cross-job history lever: a
    /// `SharedPublish` job's merged walks land in the store here, whatever
    /// its terminal status — a cancelled or expired job's partial history
    /// is still evidence future jobs can reuse.
    fn finalize(&self, mut job: ActiveJob) {
        let rounds = job.driver.rounds();
        let latency = job.submitted_at.elapsed();
        if let Some(key) = job.publish_key {
            if let Some(export) = job.driver.export_shared_history() {
                self.history
                    .publish(key, &export, job.job_counter.stats().unique_nodes);
            }
        }
        let (reports, panic_payload) = job.driver.finish();

        let status = if let Some(payload) = panic_payload {
            JobStatus::Panicked(panic_message(payload.as_ref()))
        } else if let Some(err) = reports.iter().find_map(|r| r.fatal.clone()) {
            JobStatus::Failed(err)
        } else {
            job.status.take().unwrap_or(JobStatus::Completed)
        };

        let samples: usize = reports.iter().map(|r| r.samples.len()).sum();
        let budget_consumed: u64 = reports.iter().map(|r| r.stats.unique_nodes).sum();
        // A degradation (transient fault, exhausted retries, open breaker)
        // does not change the terminal status — the job *completed*, with
        // partial evidence — it is reported as a flag plus a walker count.
        let degraded_walkers = reports.iter().filter(|r| r.degraded.is_some()).count() as u64;
        let mut outcome = JobOutcome {
            id: job.id,
            status,
            samples,
            requested: job.requested,
            query_cost: job.job_counter.stats().unique_nodes,
            budget_consumed,
            budget_refunded: job.budget.map_or(0, |b| b.saturating_sub(budget_consumed)),
            budget_exhausted: reports.iter().any(|r| r.budget_exhausted),
            degraded: degraded_walkers > 0,
            degraded_walkers,
            rounds,
            latency,
            queue_wait: job.queue_wait,
            finish_index: 0,
        };
        outcome.finish_index = self.metrics.on_finish(&outcome, job.delivered);
        self.trace.record(
            job.id.0,
            TraceEventKind::Finished {
                status: outcome.status.label(),
            },
        );
        let _ = job.events.send(SampleEvent::Done(outcome));
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "sampler panicked".to_string())
}

/// Rounds a job receives this cycle: its [`Priority::weight`], scaled down
/// by how much costlier its rounds are than the cheapest active job's
/// (`cheapest / cost`, both measured in unique-node queries per round).
///
/// * A job with no measurement yet (`cost == None`: it has not completed a
///   round) keeps its full weight — there is nothing to normalize by.
/// * The cheapest job keeps its full weight (ratio 1); a job whose rounds
///   cost `k×` the cheapest gets `weight / k` rounds, rounded, so both
///   consume roughly the same query budget per cycle at equal priority.
/// * The result is clamped to `[1, weight]`: cost weighting throttles, it
///   never starves (min 1) and never out-privileges priority (max weight).
///
/// Scheduling-only: the allotment changes *when* a job's rounds run, never
/// what they compute, so sample multisets stay invariant under it.
fn cost_weighted_rounds(weight: usize, cost: Option<f64>, cheapest: Option<f64>) -> usize {
    let (Some(cost), Some(cheapest)) = (cost, cheapest) else {
        return weight.max(1);
    };
    let scaled = (weight as f64 * (cheapest / cost)).round() as usize;
    scaled.clamp(1, weight.max(1))
}

#[cfg(test)]
mod tests {
    use super::{cost_weighted_rounds, PendingQueue};
    use crate::request::Priority;

    /// The pre-bucket promotion policy, kept as the test oracle: a linear
    /// `max_by` over (priority, earliest-first) on a Vec in arrival order,
    /// with aged picks taking index 0.
    struct LinearModel {
        items: Vec<(Priority, u32)>,
    }

    impl LinearModel {
        fn pop_next(&mut self, aged: bool) -> Option<u32> {
            if self.items.is_empty() {
                return None;
            }
            let best = if aged {
                0
            } else {
                self.items
                    .iter()
                    .enumerate()
                    .max_by(|(ia, (pa, _)), (ib, (pb, _))| {
                        (pa, std::cmp::Reverse(ia)).cmp(&(pb, std::cmp::Reverse(ib)))
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty")
            };
            Some(self.items.remove(best).1)
        }
    }

    #[test]
    fn pending_queue_matches_the_linear_scan_oracle() {
        let priorities = [Priority::Low, Priority::Normal, Priority::High];
        let mut queue: PendingQueue<u32> = PendingQueue::new();
        let mut model = LinearModel { items: Vec::new() };
        let mut rng: u64 = 0x5EED_CAFE;
        let mut next_item: u32 = 0;
        let mut promotions: u64 = 0;
        for _ in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let roll = (rng >> 33) as usize;
            if roll % 5 < 3 || queue.is_empty() {
                let p = priorities[roll % 3];
                queue.push(p, next_item);
                model.items.push((p, next_item));
                next_item += 1;
            } else {
                let aged = promotions % 4 == 3;
                promotions += 1;
                assert_eq!(queue.pop_next(aged), model.pop_next(aged));
            }
            assert_eq!(queue.len(), model.items.len());
            assert_eq!(queue.is_empty(), model.items.is_empty());
        }
        // Drain both completely, still in lockstep.
        let mut aged_tick = 0u64;
        while !queue.is_empty() {
            let aged = aged_tick % 4 == 3;
            aged_tick += 1;
            assert_eq!(queue.pop_next(aged), model.pop_next(aged));
        }
        assert!(model.items.is_empty());
        assert_eq!(queue.pop_next(false), None);
        assert_eq!(queue.pop_next(true), None);
    }

    #[test]
    fn pending_queue_is_fifo_within_priority_and_aged_takes_oldest() {
        let mut q: PendingQueue<u32> = PendingQueue::new();
        q.push(Priority::Low, 0);
        q.push(Priority::High, 1);
        q.push(Priority::High, 2);
        q.push(Priority::Normal, 3);
        assert_eq!(q.pop_next(false), Some(1)); // highest priority, oldest first
        assert_eq!(q.pop_next(true), Some(0)); // aged: globally oldest
        assert_eq!(q.pop_next(false), Some(2));
        assert_eq!(q.pop_next(false), Some(3));
        assert_eq!(q.pop_next(false), None);
    }

    #[test]
    fn pending_queue_extract_if_returns_arrival_order() {
        let mut q: PendingQueue<u32> = PendingQueue::new();
        q.push(Priority::High, 10);
        q.push(Priority::Low, 11);
        q.push(Priority::Normal, 12);
        q.push(Priority::High, 13);
        let removed = q.extract_if(|&item| item != 12);
        assert_eq!(removed, vec![10, 11, 13]); // arrival order, not bucket order
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_next(false), Some(12));
    }

    #[test]
    fn equal_costs_keep_full_priority_weights() {
        for weight in [1, 2, 4] {
            assert_eq!(cost_weighted_rounds(weight, Some(10.0), Some(10.0)), weight);
        }
    }

    #[test]
    fn costlier_jobs_are_throttled_proportionally() {
        // 4× the cheapest job's per-round cost → a quarter of the rounds.
        assert_eq!(cost_weighted_rounds(4, Some(40.0), Some(10.0)), 1);
        // 2× → half.
        assert_eq!(cost_weighted_rounds(4, Some(20.0), Some(10.0)), 2);
        // The cheapest job itself keeps its weight.
        assert_eq!(cost_weighted_rounds(4, Some(10.0), Some(10.0)), 4);
    }

    #[test]
    fn throttling_never_starves_or_out_privileges() {
        // Extremely expensive job: still at least one round per cycle.
        assert_eq!(cost_weighted_rounds(4, Some(1e9), Some(1.0)), 1);
        // The ratio can never push a job above its priority weight (the
        // baseline is the minimum, so the ratio is ≤ 1 by construction —
        // clamp anyway against future baseline changes).
        assert_eq!(cost_weighted_rounds(2, Some(1.0), Some(50.0)), 2);
        // Weight-1 (low priority) jobs are untouched by the weighting.
        assert_eq!(cost_weighted_rounds(1, Some(500.0), Some(1.0)), 1);
    }

    #[test]
    fn unmeasured_jobs_keep_their_weight() {
        assert_eq!(cost_weighted_rounds(4, None, Some(3.0)), 4);
        assert_eq!(cost_weighted_rounds(2, Some(3.0), None), 2);
        assert_eq!(cost_weighted_rounds(2, None, None), 2);
        // Degenerate zero weight is still at least one round.
        assert_eq!(cost_weighted_rounds(0, None, None), 1);
        assert_eq!(cost_weighted_rounds(0, Some(2.0), Some(1.0)), 1);
    }
}
