//! Client-facing request types and admission errors.

use std::fmt;
use std::time::Duration;
use wnw_engine::{HistoryPolicy, ReuseCorrection, SampleJob};

/// Identifier assigned by the service to an admitted request, echoed in
/// every event of the request's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling priority of a request.
///
/// Priorities are *weights*, not preemption levels: each scheduling cycle
/// hands every active job [`weight`](Priority::weight) rounds, so among
/// active jobs a high-priority one advances four times as fast as a
/// low-priority one but can never starve it. The *queue* (jobs admitted
/// beyond the scheduler's active slots) is drained highest-priority first
/// with periodic aging — every few promotions the oldest submission is
/// taken regardless of priority — so a low-priority job's wait is bounded
/// even under a sustained stream of higher-priority arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Background work: 1 round per scheduling cycle.
    Low,
    /// The default: 2 rounds per cycle.
    #[default]
    Normal,
    /// Latency-sensitive work: 4 rounds per cycle.
    High,
}

impl Priority {
    /// Number of priority levels (the scheduler's pending queue keeps one
    /// FIFO bucket per level).
    pub const COUNT: usize = 3;

    /// Rounds this priority receives per scheduling cycle.
    pub fn weight(&self) -> usize {
        match self {
            Priority::Low => 1,
            Priority::Normal => 2,
            Priority::High => 4,
        }
    }
}

/// A sampling request: *what* to sample (the embedded engine
/// [`SampleJob`] — sampler kind, sample count, virtual walkers, seed, query
/// budget) plus *how* the service should treat it (priority, deadline).
///
/// Reproducibility contract: for a fixed job (spec, seed, walkers, budget),
/// the accepted-sample multiset the service delivers under the default
/// [`HistoryPolicy::Isolated`] is identical at any pool thread count and
/// regardless of which other requests are running — the scheduler only
/// decides *when* walkers run, never what they compute. Under the shared
/// history policies the multiset additionally depends on the history-store
/// snapshot frozen at admission (and on nothing else): deterministic given
/// an admission order.
#[derive(Debug, Clone)]
pub struct SampleRequest {
    /// The sampling work itself.
    pub job: SampleJob,
    /// Scheduling weight.
    pub priority: Priority,
    /// Relative deadline; the job is stopped (status
    /// [`DeadlineExpired`](crate::JobStatus::DeadlineExpired)) at the first
    /// round boundary after `submit + deadline`. Samples already accepted
    /// are delivered.
    pub deadline: Option<Duration>,
    /// Cross-job history coupling: whether this job reads the walk history
    /// completed prior jobs published, and whether it publishes its own at
    /// reap. Defaults to [`HistoryPolicy::Isolated`].
    pub history_policy: HistoryPolicy,
    /// How reused (prior-job) walk counts are weighted against the job's
    /// own under a shared policy. Defaults to
    /// [`ReuseCorrection::Reweighted`].
    pub reuse_correction: ReuseCorrection,
}

impl SampleRequest {
    /// A request with default priority, no deadline, and isolated history.
    pub fn new(job: SampleJob) -> Self {
        SampleRequest {
            job,
            priority: Priority::default(),
            deadline: None,
            history_policy: HistoryPolicy::default(),
            reuse_correction: ReuseCorrection::default(),
        }
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the cross-job history policy.
    pub fn with_history_policy(mut self, policy: HistoryPolicy) -> Self {
        self.history_policy = policy;
        self
    }

    /// Sets the reuse bias-correction mode.
    pub fn with_reuse_correction(mut self, correction: ReuseCorrection) -> Self {
        self.reuse_correction = correction;
        self
    }
}

/// Why the service refused a request at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The request can never produce work (zero samples, zero walkers).
    Invalid(&'static str),
    /// The service is at its in-flight capacity; retry later.
    Saturated {
        /// Jobs currently queued or running.
        in_flight: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// The service has been shut down.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Invalid(reason) => write!(f, "invalid request: {reason}"),
            AdmissionError::Saturated { in_flight, limit } => {
                write!(
                    f,
                    "service saturated ({in_flight} jobs in flight, limit {limit})"
                )
            }
            AdmissionError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_mcmc::RandomWalkKind;

    #[test]
    fn priority_weights_are_ordered() {
        assert!(Priority::Low.weight() < Priority::Normal.weight());
        assert!(Priority::Normal.weight() < Priority::High.weight());
        assert!(Priority::Low < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn request_builder_sets_fields() {
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 5, 1);
        let request = SampleRequest::new(job)
            .with_priority(Priority::High)
            .with_deadline(Duration::from_secs(3))
            .with_history_policy(HistoryPolicy::SharedPublish)
            .with_reuse_correction(ReuseCorrection::Raw);
        assert_eq!(request.priority, Priority::High);
        assert_eq!(request.deadline, Some(Duration::from_secs(3)));
        assert_eq!(request.history_policy, HistoryPolicy::SharedPublish);
        assert_eq!(request.reuse_correction, ReuseCorrection::Raw);
    }

    #[test]
    fn requests_default_to_isolated_history() {
        let request = SampleRequest::new(SampleJob::walk_estimate(RandomWalkKind::Simple, 5, 1));
        assert_eq!(request.history_policy, HistoryPolicy::Isolated);
        assert_eq!(request.reuse_correction, ReuseCorrection::Reweighted);
    }

    #[test]
    fn errors_display() {
        assert!(AdmissionError::Invalid("no samples")
            .to_string()
            .contains("no samples"));
        assert!(AdmissionError::Saturated {
            in_flight: 9,
            limit: 8
        }
        .to_string()
        .contains("9"));
        assert!(AdmissionError::ShuttingDown.to_string().contains("shut"));
        assert_eq!(JobId(3).to_string(), "job-3");
    }
}
