//! A shared registry of submitted jobs, keyed by [`JobId`].
//!
//! A [`JobTicket`] bundles a job's event stream and cancellation handle for
//! the caller that submitted it. A *frontend* (such as the HTTP gateway in
//! `wnw-gateway`) cannot hand the ticket to its remote client — the client
//! comes back later, over a different connection, holding nothing but the
//! job id. [`JobRegistry`] bridges that gap: the frontend registers every
//! ticket at submission, then looks jobs up by id to claim the stream
//! (exactly once), cancel, or discard them.
//!
//! Discarding an entry whose stream was never claimed drops the
//! [`SampleStream`], which is the service's consumer-hang-up path: the
//! scheduler notices the closed channel at the next delivery, cancels the
//! job, and refunds its unused budget.

use crate::request::JobId;
use crate::stream::{JobHandle, JobTicket, SampleStream};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Why a stream claim failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimError {
    /// No job with this id is registered (never submitted, or already
    /// discarded).
    Unknown,
    /// The stream was already claimed — a [`SampleStream`] is a single
    /// consumer object, so a second claim would deliver nothing.
    AlreadyClaimed,
}

impl fmt::Display for ClaimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaimError::Unknown => write!(f, "unknown job"),
            ClaimError::AlreadyClaimed => write!(f, "stream already claimed"),
        }
    }
}

impl std::error::Error for ClaimError {}

#[derive(Debug)]
struct Entry {
    /// `None` once claimed.
    stream: Option<SampleStream>,
    handle: JobHandle,
    registered_at: Instant,
}

/// Thread-safe [`JobId`] → ticket map for frontends serving remote clients.
///
/// ```
/// use wnw_access::SimulatedOsn;
/// use wnw_engine::SampleJob;
/// use wnw_graph::generators::random::barabasi_albert;
/// use wnw_mcmc::RandomWalkKind;
/// use wnw_service::{JobRegistry, SampleRequest, SamplingService};
///
/// let osn = SimulatedOsn::new(barabasi_albert(300, 3, 7).unwrap());
/// let service = SamplingService::new(osn);
/// let registry = JobRegistry::default();
///
/// let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 5, 1).with_diameter_estimate(4);
/// let id = registry.register(service.submit(SampleRequest::new(job)).unwrap());
///
/// // Later, possibly from another thread, claim the stream by id.
/// let stream = registry.claim_stream(id).unwrap();
/// let (samples, outcome) = stream.collect_all();
/// assert_eq!(samples.len(), 5);
/// assert_eq!(outcome.unwrap().samples, 5);
/// assert!(registry.discard(id));
/// ```
#[derive(Debug, Default)]
pub struct JobRegistry {
    inner: Mutex<HashMap<JobId, Entry>>,
}

impl JobRegistry {
    fn entries(&self) -> std::sync::MutexGuard<'_, HashMap<JobId, Entry>> {
        // Same poison policy as the access layer: a panicking frontend
        // thread must not take the registry down for every other client.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers an admitted job's ticket and returns its id.
    pub fn register(&self, ticket: JobTicket) -> JobId {
        let JobTicket { id, stream, handle } = ticket;
        self.entries().insert(
            id,
            Entry {
                stream: Some(stream),
                handle,
                registered_at: Instant::now(),
            },
        );
        id
    }

    /// Discards every entry whose stream is still unclaimed after `ttl` —
    /// a fire-and-forget submitter that never comes back for its results.
    /// Dropping the unclaimed streams cancels those jobs (the hang-up
    /// path), stopping them from burning query budget, and frees their
    /// buffered events. Entries mid-claim (a frontend is streaming them)
    /// are never touched. Returns how many entries were reaped.
    ///
    /// Frontends should call this periodically — the HTTP gateway sweeps on
    /// every submission, so the registry's unclaimed population is bounded
    /// by the submission rate within any `ttl` window.
    pub fn sweep_unclaimed(&self, ttl: Duration) -> usize {
        let mut entries = self.entries();
        let before = entries.len();
        entries.retain(|_, entry| entry.stream.is_none() || entry.registered_at.elapsed() < ttl);
        before - entries.len()
    }

    /// Takes the job's event stream. Each stream can be claimed exactly
    /// once; the entry (with its cancellation handle) stays registered until
    /// [`discard`](Self::discard).
    pub fn claim_stream(&self, id: JobId) -> Result<SampleStream, ClaimError> {
        let mut entries = self.entries();
        let entry = entries.get_mut(&id).ok_or(ClaimError::Unknown)?;
        entry.stream.take().ok_or(ClaimError::AlreadyClaimed)
    }

    /// A clone of the job's cancellation handle, if registered.
    pub fn handle(&self, id: JobId) -> Option<JobHandle> {
        self.entries().get(&id).map(|e| e.handle.clone())
    }

    /// Requests cooperative cancellation of a registered job. Returns
    /// whether the id was known; the entry stays registered so the (possibly
    /// already claimed) stream still delivers the terminal `Done` event.
    pub fn cancel(&self, id: JobId) -> bool {
        match self.entries().get(&id) {
            Some(entry) => {
                entry.handle.cancel();
                true
            }
            None => false,
        }
    }

    /// Requests cancellation of every registered job (shutdown path: lets
    /// in-flight streams reach their `Done` event promptly).
    pub fn cancel_all(&self) {
        for entry in self.entries().values() {
            entry.handle.cancel();
        }
    }

    /// Removes a job's entry entirely. Dropping an unclaimed stream is the
    /// consumer-hang-up path: the scheduler cancels the job and refunds its
    /// unused budget. Returns whether the id was known.
    pub fn discard(&self, id: JobId) -> bool {
        self.entries().remove(&id).is_some()
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether no jobs are registered.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SampleRequest;
    use crate::service::SamplingService;
    use wnw_access::SimulatedOsn;
    use wnw_engine::SampleJob;
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_mcmc::RandomWalkKind;

    fn service() -> SamplingService<SimulatedOsn> {
        let osn = SimulatedOsn::new(barabasi_albert(300, 3, 11).unwrap());
        SamplingService::builder(osn).pool_threads(1).build()
    }

    fn request(samples: usize, seed: u64) -> SampleRequest {
        SampleRequest::new(
            SampleJob::walk_estimate(RandomWalkKind::Simple, samples, seed)
                .with_walkers(2)
                .with_diameter_estimate(4),
        )
    }

    #[test]
    fn claim_is_exactly_once() {
        let service = service();
        let registry = JobRegistry::default();
        let id = registry.register(service.submit(request(4, 1)).unwrap());
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_empty());
        let stream = registry.claim_stream(id).expect("first claim succeeds");
        assert!(
            matches!(registry.claim_stream(id), Err(ClaimError::AlreadyClaimed)),
            "second claim must fail"
        );
        assert_eq!(stream.wait().unwrap().samples, 4);
        assert!(registry.discard(id));
        assert!(!registry.discard(id));
        assert!(matches!(
            registry.claim_stream(id),
            Err(ClaimError::Unknown)
        ));
    }

    #[test]
    fn cancel_by_id_reaches_the_job() {
        let service = service();
        let registry = JobRegistry::default();
        let id = registry.register(service.submit(request(1_000_000, 2)).unwrap());
        assert!(registry.cancel(id));
        assert!(registry.handle(id).unwrap().is_cancelled());
        let outcome = registry.claim_stream(id).unwrap().wait().unwrap();
        assert_eq!(outcome.status, crate::stream::JobStatus::Cancelled);
        assert!(!registry.cancel(JobId(999)), "unknown ids report false");
        assert!(registry.handle(JobId(999)).is_none());
    }

    #[test]
    fn discarding_an_unclaimed_stream_cancels_via_hangup() {
        let service = service();
        let registry = JobRegistry::default();
        let id = registry.register(service.submit(request(1_000_000, 3)).unwrap());
        assert!(registry.discard(id));
        // The dropped stream is the hang-up signal; shutdown drains quickly
        // instead of sampling a million nodes.
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_cancelled, 1);
    }

    #[test]
    fn sweep_reaps_only_stale_unclaimed_entries() {
        let service = service();
        let registry = JobRegistry::default();
        let stale = registry.register(service.submit(request(1_000_000, 6)).unwrap());
        let claimed = registry.register(service.submit(request(4, 7)).unwrap());
        let stream = registry.claim_stream(claimed).unwrap();
        // Nothing has aged past a generous TTL yet.
        assert_eq!(
            registry.sweep_unclaimed(std::time::Duration::from_secs(60)),
            0
        );
        // TTL zero: the unclaimed entry is reaped, the claimed one stays.
        assert_eq!(registry.sweep_unclaimed(std::time::Duration::ZERO), 1);
        assert!(registry.handle(stale).is_none());
        assert!(registry.handle(claimed).is_some());
        assert_eq!(stream.wait().unwrap().samples, 4);
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_cancelled, 1, "reaping cancels via hang-up");
    }

    #[test]
    fn cancel_all_stops_every_job() {
        let service = service();
        let registry = JobRegistry::default();
        let a = registry.register(service.submit(request(1_000_000, 4)).unwrap());
        let b = registry.register(service.submit(request(1_000_000, 5)).unwrap());
        registry.cancel_all();
        for id in [a, b] {
            let outcome = registry.claim_stream(id).unwrap().wait().unwrap();
            assert_eq!(outcome.status, crate::stream::JobStatus::Cancelled);
        }
    }
}
