//! Streaming result delivery.
//!
//! A submitted request is answered with a [`SampleStream`]: a blocking
//! iterator over [`SampleEvent`]s that yields each accepted sample **as the
//! scheduler lands it** — round by round, not as one merged end-of-job
//! report. The event protocol is:
//!
//! ```text
//! Sample* (Progress Sample*)* Done      — every sample precedes Done,
//!                                         Progress totals are monotone
//! ```
//!
//! Dropping the stream mid-job is the consumer hanging up: the scheduler
//! notices the closed channel at the next delivery, cancels the job, and
//! releases its walker slots and unused budget.
//!
//! **Memory contract.** Events are buffered in an in-process channel the
//! scheduler never blocks on, so a consumer slower than the scheduler
//! buffers at most the job's own output: one `Sample` per requested sample
//! plus one `Progress` per round (rounds ≤ the largest walker quota) plus
//! one `Done` — O(`job.samples`), fixed at admission time, never unbounded.
//! Callers admitting huge jobs on behalf of slow consumers should size
//! `max_in_flight` (and their requests) with that per-job buffer in mind,
//! or drop the stream to cancel.

use crate::request::JobId;
use std::sync::mpsc::{Receiver, TryRecvError};
use std::time::Duration;
use wnw_access::counter::QueryStats;
use wnw_access::AccessError;
use wnw_mcmc::sampler::SampleRecord;

/// One message of a request's result stream.
#[derive(Debug, Clone)]
pub enum SampleEvent {
    /// A walker accepted a sample.
    Sample {
        /// Virtual walker that produced it (its RNG stream index).
        walker: usize,
        /// The sample, with the walker's own query cost at that moment.
        record: SampleRecord,
    },
    /// A consistent progress snapshot, emitted after each round the job ran.
    Progress(ProgressUpdate),
    /// The job reached a terminal state; no further events follow.
    Done(JobOutcome),
}

/// Progress at a round boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressUpdate {
    /// Rounds the job has run.
    pub rounds: usize,
    /// Samples delivered so far (monotone; equals the outcome's `samples`
    /// in the final update).
    pub samples: usize,
    /// Samples the request asked for.
    pub requested: usize,
    /// Walkers still drawing.
    pub live_walkers: usize,
    /// Sum of the walkers' own unique-node charges (what budget enforcement
    /// sees).
    pub budget_consumed: u64,
    /// Distinct nodes this *job* touched, through its job-level metering
    /// view — the cost an isolated run would have paid.
    pub query_cost: u64,
    /// Service-wide shared-cache counters at this instant.
    pub pool: QueryStats,
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Quota met, or every walker stopped normally (budget exhausted).
    Completed,
    /// Stopped by [`JobHandle::cancel`](crate::JobHandle::cancel) or by the
    /// consumer dropping the stream.
    Cancelled,
    /// Stopped because the request's deadline passed.
    DeadlineExpired,
    /// A walker hit a non-budget access error.
    Failed(AccessError),
    /// A walker's sampler panicked; the message is the panic payload.
    Panicked(String),
}

impl JobStatus {
    /// The status's stable wire label — what the gateway's JSON documents
    /// and the trace log's `Finished` events carry (detail like the failed
    /// variant's error is reported separately, not in the label).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::DeadlineExpired => "deadline_expired",
            JobStatus::Failed(_) => "failed",
            JobStatus::Panicked(_) => "panicked",
        }
    }
}

/// Terminal accounting for one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// The id assigned at submission.
    pub id: JobId,
    /// Terminal state.
    pub status: JobStatus,
    /// Samples delivered before the stop.
    pub samples: usize,
    /// Samples the request asked for.
    pub requested: usize,
    /// Distinct nodes the job touched through its own metering view — what
    /// the same request would have cost run in isolation. The service-wide
    /// pool typically paid less (shared cache).
    pub query_cost: u64,
    /// Sum of the walkers' unique-node charges (budget accounting).
    pub budget_consumed: u64,
    /// Unused query budget returned to the caller (0 for unbudgeted jobs).
    pub budget_refunded: u64,
    /// Whether any walker stopped on budget exhaustion.
    pub budget_exhausted: bool,
    /// Whether the job completed as a **degraded partial**: at least one
    /// walker was stopped by a transient fault, exhausted retries, or an
    /// open circuit breaker. The samples delivered before the fault are
    /// kept, and the job's history still publishes — partial walks are
    /// evidence, not waste.
    pub degraded: bool,
    /// How many walkers were stopped by a degradation (0 when
    /// [`degraded`](Self::degraded) is false).
    pub degraded_walkers: u64,
    /// Rounds the job ran.
    pub rounds: usize,
    /// Submit-to-done wall-clock latency.
    pub latency: Duration,
    /// Admission→first-round wait: how long the job sat in the queue before
    /// the scheduler granted it walker slots (for jobs cancelled or expired
    /// while still queued, their whole queued life). The scheduling-latency
    /// share of [`latency`](Self::latency).
    pub queue_wait: Duration,
    /// 0-based position in the service's completion order (the first job to
    /// finish has index 0) — what the priority tests assert on.
    pub finish_index: u64,
}

/// What one non-blocking [`SampleStream::poll_next`] call observed.
///
/// The non-blocking twin of the stream's `Iterator` protocol, for
/// consumers that multiplex many streams on one thread (the gateway's
/// readiness loop): `Event` and `Finished` mean exactly what `Some` and
/// `None` mean to the iterator, and `Empty` is the third state blocking
/// iteration never surfaces — nothing buffered *right now*, poll again
/// later.
#[derive(Debug)]
pub enum StreamPoll {
    /// The next buffered event (after [`SampleEvent::Done`] the stream is
    /// finished).
    Event(SampleEvent),
    /// Nothing buffered right now; the job is still producing.
    Empty,
    /// No further events will ever arrive: the `Done` event was already
    /// delivered, or the service was torn down without sending one.
    Finished,
}

/// Blocking iterator over a job's [`SampleEvent`]s.
///
/// Iteration ends after the [`Done`](SampleEvent::Done) event (or
/// immediately, if the service was torn down without delivering one).
/// Consumers that cannot afford to block — one thread serving many
/// streams — use [`poll_next`](Self::poll_next) instead.
#[derive(Debug)]
pub struct SampleStream {
    rx: Receiver<SampleEvent>,
    finished: bool,
}

impl SampleStream {
    pub(crate) fn new(rx: Receiver<SampleEvent>) -> Self {
        SampleStream {
            rx,
            finished: false,
        }
    }

    /// Non-blocking pull of the next buffered event. Never waits: returns
    /// [`StreamPoll::Empty`] when the scheduler has not landed anything
    /// new yet, and [`StreamPoll::Finished`] once the stream is over
    /// (after `Done`, or after a service teardown). Mixing `poll_next`
    /// and blocking iteration is fine — both advance the same stream.
    pub fn poll_next(&mut self) -> StreamPoll {
        if self.finished {
            return StreamPoll::Finished;
        }
        match self.rx.try_recv() {
            Ok(event) => {
                if matches!(event, SampleEvent::Done(_)) {
                    self.finished = true;
                }
                StreamPoll::Event(event)
            }
            Err(TryRecvError::Empty) => StreamPoll::Empty,
            Err(TryRecvError::Disconnected) => {
                self.finished = true;
                StreamPoll::Finished
            }
        }
    }

    /// Blocks until the job is done, discarding per-sample events, and
    /// returns the outcome. `None` only if the service vanished without
    /// sending one (e.g. its scheduler thread was killed).
    pub fn wait(self) -> Option<JobOutcome> {
        let mut outcome = None;
        for event in self {
            if let SampleEvent::Done(done) = event {
                outcome = Some(done);
            }
        }
        outcome
    }

    /// Blocks until the job is done and returns every sample (in delivery
    /// order: walker order within each round) plus the outcome.
    pub fn collect_all(self) -> (Vec<SampleRecord>, Option<JobOutcome>) {
        let mut samples = Vec::new();
        let mut outcome = None;
        for event in self {
            match event {
                SampleEvent::Sample { record, .. } => samples.push(record),
                SampleEvent::Progress(_) => {}
                SampleEvent::Done(done) => outcome = Some(done),
            }
        }
        (samples, outcome)
    }
}

impl Iterator for SampleStream {
    type Item = SampleEvent;

    fn next(&mut self) -> Option<SampleEvent> {
        if self.finished {
            return None;
        }
        match self.rx.recv() {
            Ok(event) => {
                if matches!(event, SampleEvent::Done(_)) {
                    self.finished = true;
                }
                Some(event)
            }
            Err(_) => {
                self.finished = true;
                None
            }
        }
    }
}

/// Cancellation handle for a submitted job (cheap to clone, safe to use
/// from any thread).
#[derive(Debug, Clone)]
pub struct JobHandle {
    id: JobId,
    cancel: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl JobHandle {
    pub(crate) fn new(id: JobId, cancel: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        JobHandle { id, cancel }
    }

    /// The job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Requests cooperative cancellation: the scheduler stops the job at
    /// the next round boundary, delivers the samples accepted so far, and
    /// refunds the unused budget in the outcome.
    pub fn cancel(&self) {
        self.cancel
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Everything [`submit`](crate::SamplingService::submit) hands back for an
/// admitted request.
#[derive(Debug)]
pub struct JobTicket {
    /// The id the service assigned.
    pub id: JobId,
    /// The result stream.
    pub stream: SampleStream,
    /// Cancellation handle.
    pub handle: JobHandle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn outcome(id: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            status: JobStatus::Completed,
            samples: 0,
            requested: 0,
            query_cost: 0,
            budget_consumed: 0,
            budget_refunded: 0,
            budget_exhausted: false,
            degraded: false,
            degraded_walkers: 0,
            rounds: 0,
            latency: Duration::ZERO,
            queue_wait: Duration::ZERO,
            finish_index: 0,
        }
    }

    #[test]
    fn stream_ends_after_done() {
        let (tx, rx) = channel();
        tx.send(SampleEvent::Done(outcome(1))).unwrap();
        // Events after Done are never delivered.
        tx.send(SampleEvent::Done(outcome(2))).unwrap();
        let mut stream = SampleStream::new(rx);
        assert!(matches!(stream.next(), Some(SampleEvent::Done(o)) if o.id == JobId(1)));
        assert!(stream.next().is_none());
        assert!(stream.next().is_none());
    }

    #[test]
    fn poll_next_never_blocks_and_tracks_the_stream_protocol() {
        let (tx, rx) = channel();
        let mut stream = SampleStream::new(rx);
        // Nothing buffered: Empty, not a block or an end.
        assert!(matches!(stream.poll_next(), StreamPoll::Empty));
        tx.send(SampleEvent::Done(outcome(3))).unwrap();
        assert!(matches!(
            stream.poll_next(),
            StreamPoll::Event(SampleEvent::Done(o)) if o.id == JobId(3)
        ));
        // After Done the stream is finished even though the sender lives.
        assert!(matches!(stream.poll_next(), StreamPoll::Finished));

        // Disconnect without Done also finishes.
        let (tx, rx) = channel::<SampleEvent>();
        let mut stream = SampleStream::new(rx);
        drop(tx);
        assert!(matches!(stream.poll_next(), StreamPoll::Finished));
        assert!(matches!(stream.poll_next(), StreamPoll::Finished));
    }

    #[test]
    fn poll_next_interleaves_with_blocking_iteration() {
        let (tx, rx) = channel();
        tx.send(SampleEvent::Progress(ProgressUpdate {
            rounds: 1,
            samples: 0,
            requested: 4,
            live_walkers: 1,
            budget_consumed: 0,
            query_cost: 0,
            pool: Default::default(),
        }))
        .unwrap();
        tx.send(SampleEvent::Done(outcome(9))).unwrap();
        let mut stream = SampleStream::new(rx);
        assert!(matches!(
            stream.poll_next(),
            StreamPoll::Event(SampleEvent::Progress(_))
        ));
        // The blocking iterator picks up exactly where the poll left off.
        assert!(matches!(stream.next(), Some(SampleEvent::Done(_))));
        assert!(stream.next().is_none());
        assert!(matches!(stream.poll_next(), StreamPoll::Finished));
    }

    #[test]
    fn stream_ends_on_disconnect_without_done() {
        let (tx, rx) = channel::<SampleEvent>();
        drop(tx);
        let stream = SampleStream::new(rx);
        assert!(stream.wait().is_none());
    }

    #[test]
    fn status_labels_are_stable() {
        assert_eq!(JobStatus::Completed.label(), "completed");
        assert_eq!(JobStatus::Cancelled.label(), "cancelled");
        assert_eq!(JobStatus::DeadlineExpired.label(), "deadline_expired");
        assert_eq!(
            JobStatus::Failed(wnw_access::AccessError::BudgetExhausted { budget: 0 }).label(),
            "failed"
        );
        assert_eq!(JobStatus::Panicked("boom".into()).label(), "panicked");
    }

    #[test]
    fn handle_cancel_roundtrip() {
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let handle = JobHandle::new(JobId(7), flag.clone());
        assert_eq!(handle.id(), JobId(7));
        assert!(!handle.is_cancelled());
        handle.clone().cancel();
        assert!(handle.is_cancelled());
        assert!(flag.load(std::sync::atomic::Ordering::Relaxed));
    }
}
