//! # wnw-service — a multi-job sampling service with streaming delivery
//!
//! The paper's pitch is that WALK-ESTIMATE makes each sample cheap enough
//! that sampling stops being an offline batch job and becomes an **online
//! service**. This crate is that serving layer over the concurrent engine
//! of `wnw-engine`: a long-lived [`SamplingService`] accepting many
//! concurrent [`SampleRequest`]s against one shared network handle.
//!
//! * **Admission control.** Requests are validated and capacity-checked at
//!   the door ([`AdmissionError`]); beyond `max_in_flight` jobs the service
//!   sheds load instead of queueing unboundedly.
//! * **Batched multi-job scheduling on one persistent pool.** One scheduler
//!   thread interleaves all active jobs **round by round** over one
//!   persistent [`wnw_runtime::WorkerPool`] spawned at service startup —
//!   after that, no round ever spawns an OS thread (the pool's counters in
//!   [`ServiceMetricsSnapshot::worker_pool`] make this observable).
//!   Interleaving is weighted by [`Priority`] and normalized by each job's
//!   *measured per-round query cost*: a job whose rounds cost `k×` the
//!   cheapest active job's gets `weight / k` rounds per cycle (never less
//!   than one), so heterogeneous jobs share the pool by work done, big jobs
//!   never starve small ones, and high-priority jobs simply advance more
//!   rounds per cycle.
//! * **Streaming delivery.** A [`SampleStream`] yields
//!   [`SampleEvent::Sample`] as walkers land samples, interleaved with
//!   monotone [`SampleEvent::Progress`] snapshots, terminated by one
//!   [`SampleEvent::Done`] carrying the [`JobOutcome`].
//! * **Cooperative cancellation.** [`JobHandle::cancel`], a request
//!   deadline, or dropping the stream stops a job at the next round
//!   boundary; delivered samples are kept and unused budget is refunded in
//!   the outcome (and in [`ServiceMetricsSnapshot::budget_refunded`]).
//! * **Shared cache, isolated budgets.** Every job reads through one
//!   shared, lock-striped `CachedNetwork` — a node any job has paid for is
//!   free for all — while each request meters its own traffic through a
//!   job-level `MeteredNetwork` view and enforces its own per-walker budget
//!   shares. [`ServiceMetricsSnapshot::shared_cache_savings`] quantifies
//!   the win over isolated runs.
//! * **Reproducibility under co-load.** A request's accepted-sample
//!   multiset is a pure function of its job (spec, seed, walkers, budget):
//!   identical at any pool width and no matter what else the service is
//!   running. Walk history is cooperative *within* a job by default.
//! * **Cross-job history reuse (opt-in).** A request's
//!   [`HistoryPolicy`] can plug it into the
//!   service-scoped, epoch-versioned [`HistoryStore`]:
//!   `SharedReadOnly`/`SharedPublish` jobs read an immutable snapshot of
//!   the walks *completed prior jobs* published (frozen at admission — the
//!   snapshot-on-admit epoch rule, so mid-job publications are never
//!   observed) and `SharedPublish` jobs publish their own merged walks at
//!   reap. Reused counts are discounted by a
//!   [`ReuseCorrection`]; the backward
//!   estimator stays unbiased either way, so reuse only reduces variance
//!   and query cost. [`ServiceMetricsSnapshot::history`] quantifies the
//!   hits, misses, and inherited query savings.
//! * **Frontend support.** A [`JobRegistry`] maps [`JobId`]s back to their
//!   streams and cancellation handles, so frontends (like the HTTP gateway
//!   in `wnw-gateway`) can serve remote clients that return later holding
//!   nothing but the id; queue-wait aggregates in
//!   [`ServiceMetricsSnapshot`] expose scheduling latency alongside the
//!   query savings.
//!
//! ```
//! use wnw_access::SimulatedOsn;
//! use wnw_engine::SampleJob;
//! use wnw_graph::generators::random::barabasi_albert;
//! use wnw_mcmc::RandomWalkKind;
//! use wnw_service::{SampleEvent, SampleRequest, SamplingService};
//!
//! let osn = SimulatedOsn::new(barabasi_albert(500, 3, 7).unwrap());
//! let service = SamplingService::builder(osn).pool_threads(2).build();
//!
//! // Submit two concurrent requests; results stream back per sample.
//! let a = service
//!     .submit(SampleRequest::new(
//!         SampleJob::walk_estimate(RandomWalkKind::Simple, 12, 42).with_diameter_estimate(5),
//!     ))
//!     .unwrap();
//! let b = service
//!     .submit(SampleRequest::new(
//!         SampleJob::walk_estimate(RandomWalkKind::MetropolisHastings, 8, 43)
//!             .with_diameter_estimate(5),
//!     ))
//!     .unwrap();
//!
//! let (samples, outcome) = a.stream.collect_all();
//! assert_eq!(samples.len(), 12);
//! assert_eq!(outcome.unwrap().samples, 12);
//! for event in b.stream {
//!     if let SampleEvent::Done(outcome) = event {
//!         assert_eq!(outcome.samples, 8);
//!     }
//! }
//! let metrics = service.shutdown();
//! assert_eq!(metrics.jobs_completed, 2);
//! assert_eq!(metrics.samples_delivered, 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod request;
mod scheduler;
pub mod service;
pub mod stream;

pub use metrics::{ServiceMetrics, ServiceMetricsSnapshot};
pub use registry::{ClaimError, JobRegistry};
pub use request::{AdmissionError, JobId, Priority, SampleRequest};
pub use service::{SamplingService, ServiceBuilder, ServiceConfig};
pub use stream::{
    JobHandle, JobOutcome, JobStatus, JobTicket, ProgressUpdate, SampleEvent, SampleStream,
    StreamPoll,
};
// The persistent worker pool the scheduler runs rounds on; re-exported so
// frontends can name its stats type without depending on `wnw-runtime`.
pub use wnw_runtime::{PoolStats, WorkerPool};
// The cross-job history types a frontend needs to express and observe the
// reuse lever, re-exported from the engine for the same reason.
pub use wnw_engine::{HistoryPolicy, HistoryStore, HistoryStoreStats, ReuseCorrection};
// The telemetry substrate's types a frontend needs to read the metrics
// snapshot's histograms and the per-job lifecycle trace.
pub use wnw_telemetry::{Histogram, HistogramSnapshot, TraceEvent, TraceEventKind, TraceLog};
// The resilience layer's handle and stats, re-exported so frontends can
// attach a monitor and read retry/backoff/breaker counters without
// depending on `wnw-access` directly.
pub use wnw_access::{ResilienceMonitor, ResilienceStats};

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_access::SimulatedOsn;
    use wnw_engine::SampleJob;
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_mcmc::RandomWalkKind;

    fn osn(n: usize, seed: u64) -> SimulatedOsn {
        SimulatedOsn::new(barabasi_albert(n, 3, seed).unwrap())
    }

    fn we_job(samples: usize, seed: u64) -> SampleJob {
        SampleJob::walk_estimate(RandomWalkKind::Simple, samples, seed)
            .with_walkers(2)
            .with_diameter_estimate(4)
    }

    #[test]
    fn single_request_completes_and_streams() {
        let service = SamplingService::builder(osn(300, 1))
            .pool_threads(2)
            .build();
        let ticket = service.submit(SampleRequest::new(we_job(10, 5))).unwrap();
        assert_eq!(ticket.id, JobId(0));
        let (samples, outcome) = ticket.stream.collect_all();
        let outcome = outcome.expect("service delivers Done");
        assert_eq!(samples.len(), 10);
        assert_eq!(outcome.samples, 10);
        assert_eq!(outcome.status, JobStatus::Completed);
        assert_eq!(outcome.finish_index, 0);
        assert!(outcome.query_cost > 0);
        assert_eq!(outcome.budget_refunded, 0, "unbudgeted job refunds nothing");
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_completed, 1);
        assert_eq!(metrics.samples_delivered, 10);
        assert_eq!(metrics.jobs_running, 0);
        assert_eq!(metrics.jobs_queued, 0);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let service = SamplingService::new(osn(100, 2));
        let zero_samples = SampleRequest::new(we_job(10, 1)).job_with(|j| j.samples = 0);
        assert!(matches!(
            service.submit(zero_samples),
            Err(AdmissionError::Invalid(_))
        ));
        let zero_walkers = SampleRequest::new(we_job(5, 1)).job_with(|j| j.walkers = 0);
        assert!(matches!(
            service.submit(zero_walkers),
            Err(AdmissionError::Invalid(_))
        ));
        assert_eq!(service.metrics().jobs_rejected, 2);
        assert_eq!(service.metrics().jobs_submitted, 0);
    }

    impl SampleRequest {
        fn job_with(mut self, f: impl FnOnce(&mut SampleJob)) -> Self {
            f(&mut self.job);
            self
        }
    }

    #[test]
    fn saturation_sheds_load() {
        // Paused service: admitted jobs stay queued, so the in-flight gauge
        // is deterministic when the cap is hit.
        let service = SamplingService::builder(osn(200, 3))
            .max_in_flight(2)
            .start_paused()
            .build();
        assert!(service.is_paused());
        let a = service.submit(SampleRequest::new(we_job(4, 1))).unwrap();
        let b = service.submit(SampleRequest::new(we_job(4, 2))).unwrap();
        let rejected = service.submit(SampleRequest::new(we_job(4, 3)));
        assert!(matches!(
            rejected,
            Err(AdmissionError::Saturated {
                in_flight: 2,
                limit: 2
            })
        ));
        service.resume();
        assert!(a.stream.wait().is_some());
        assert!(b.stream.wait().is_some());
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_rejected, 1);
        assert_eq!(metrics.jobs_completed, 2);
    }

    #[test]
    fn dropping_the_stream_cancels_the_job() {
        let service = SamplingService::builder(osn(400, 4))
            .pool_threads(1)
            .build();
        let big = service
            .submit(SampleRequest::new(we_job(100_000, 9)))
            .unwrap();
        drop(big.stream);
        // The scheduler notices the hang-up at the next delivery and frees
        // the slot; shutdown then drains immediately instead of sampling
        // 100k nodes.
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_cancelled, 1);
        assert_eq!(metrics.jobs_running, 0);
    }

    #[test]
    fn deadline_zero_expires_at_first_round_boundary() {
        let service = SamplingService::builder(osn(200, 5)).build();
        let ticket = service
            .submit(SampleRequest::new(we_job(50_000, 11)).with_deadline(std::time::Duration::ZERO))
            .unwrap();
        let outcome = ticket.stream.wait().expect("Done event");
        assert_eq!(outcome.status, JobStatus::DeadlineExpired);
        assert_eq!(outcome.samples, 0);
        assert_eq!(service.metrics().jobs_expired, 1);
    }

    #[test]
    fn absurd_deadline_does_not_kill_the_scheduler() {
        // Instant + Duration::MAX overflows; the scheduler must treat it as
        // "no deadline" instead of panicking (which would orphan every
        // stream and reject all future submissions).
        let service = SamplingService::builder(osn(200, 8))
            .pool_threads(1)
            .build();
        let ticket = service
            .submit(SampleRequest::new(we_job(3, 1)).with_deadline(std::time::Duration::MAX))
            .unwrap();
        let outcome = ticket.stream.wait().expect("job completes normally");
        assert_eq!(outcome.status, JobStatus::Completed);
        assert_eq!(outcome.samples, 3);
        // The scheduler is still alive for further work.
        let again = service.submit(SampleRequest::new(we_job(2, 2))).unwrap();
        assert_eq!(again.stream.wait().unwrap().samples, 2);
    }

    #[test]
    fn cancelled_queued_jobs_release_capacity_without_running() {
        // Two slots, one active-capacity: cancel a job while it is still in
        // the pending queue; it must finish as Cancelled with zero rounds
        // and release its admission slot for a new submission.
        let service = SamplingService::builder(osn(300, 9))
            .pool_threads(1)
            .max_active(1)
            .max_in_flight(2)
            .start_paused()
            .build();
        let runner = service.submit(SampleRequest::new(we_job(6, 2))).unwrap();
        let doomed = service.submit(SampleRequest::new(we_job(500, 2))).unwrap();
        doomed.handle.cancel();
        service.resume();
        let doomed_outcome = doomed.stream.wait().unwrap();
        assert_eq!(doomed_outcome.status, JobStatus::Cancelled);
        assert_eq!(doomed_outcome.rounds, 0, "never reached a walker slot");
        assert_eq!(doomed_outcome.samples, 0);
        assert_eq!(runner.stream.wait().unwrap().samples, 6);
        // Both slots are free again.
        let next = service.submit(SampleRequest::new(we_job(2, 1))).unwrap();
        assert_eq!(next.stream.wait().unwrap().samples, 2);
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_cancelled, 1);
        assert_eq!(metrics.jobs_completed, 2);
        assert_eq!(
            metrics.samples_delivered, 8,
            "cancelled-in-queue jobs deliver nothing"
        );
    }

    #[test]
    fn shutdown_returns_final_snapshot_and_drop_is_clean() {
        let service = SamplingService::new(osn(150, 6));
        let ticket = service.submit(SampleRequest::new(we_job(3, 2))).unwrap();
        let outcome = ticket.stream.wait().unwrap();
        assert_eq!(outcome.samples, 3);
        let snapshot = service.shutdown();
        assert_eq!(snapshot.jobs_finished, 1);
        assert!(snapshot.aggregate_query_cost > 0);
    }
}
