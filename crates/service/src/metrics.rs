//! Live service-level metrics.
//!
//! [`ServiceMetrics`] is a lock-free bundle of atomic counters updated by
//! the submit path and the scheduler; [`ServiceMetricsSnapshot`] is the
//! consistent-enough copy handed to callers (and shaped for a future HTTP
//! `/metrics` frontend: every field is a plain integer gauge/counter plus
//! the pool's [`QueryStats`]).

use crate::stream::{JobOutcome, JobStatus};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wnw_access::counter::QueryStats;
use wnw_access::ResilienceStats;
use wnw_engine::HistoryStoreStats;
use wnw_runtime::PoolStats;
use wnw_telemetry::{saturating_micros, Histogram, HistogramSnapshot};

/// Atomic counters describing the service's lifetime so far.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Queued + running, maintained as its own counter so admission is a
    /// single atomic reserve (a sum of two gauges would race against
    /// concurrent `submit` calls and transiently undercount mid-promotion).
    in_flight: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    queued: AtomicU64,
    running: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    /// Jobs that finished as degraded partials (a walker was stopped by a
    /// transient fault, exhausted retries, or an open breaker).
    degraded: AtomicU64,
    /// Walkers stopped by a degradation, lifetime, across all jobs.
    walkers_degraded: AtomicU64,
    samples_delivered: AtomicU64,
    isolated_query_cost: AtomicU64,
    budget_refunded: AtomicU64,
    latency_micros: AtomicU64,
    finished: AtomicU64,
    /// Jobs that have left the queue (scheduled onto walker slots, or reaped
    /// from the queue as cancelled/expired) — the denominator of the mean
    /// queue wait.
    started: AtomicU64,
    queue_wait_micros: AtomicU64,
    queue_wait_max_micros: AtomicU64,
    /// Distribution counterparts of the aggregates above. Recording is a
    /// handful of relaxed atomics per *job* (or per delivered first sample),
    /// so these are unconditional; only the per-round duration histogram
    /// sits on a hot path, and the scheduler gates feeding it behind its
    /// `telemetry` config flag.
    queue_wait: Histogram,
    latency: Histogram,
    first_sample: Histogram,
    job_cost: Histogram,
    round_duration: Histogram,
}

impl ServiceMetrics {
    /// Atomically reserves an in-flight slot: succeeds only while the count
    /// is below `limit` (no check-then-act window between concurrent
    /// submitters). On failure, returns the count that blocked admission.
    pub(crate) fn try_admit(&self, limit: u64) -> Result<(), u64> {
        self.in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < limit).then_some(n + 1)
            })
            .map(|_| ())
    }

    /// Completes a successful [`try_admit`](Self::try_admit) reservation.
    pub(crate) fn on_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Rolls a [`try_admit`](Self::try_admit) + [`on_submit`](Self::on_submit)
    /// back when the submission could not be handed to the scheduler after
    /// all.
    pub(crate) fn on_submit_undone(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.submitted.fetch_sub(1, Ordering::Relaxed);
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job leaving the queue after `wait` (admission→first-round
    /// latency: the time between `submit` and the scheduler granting walker
    /// slots — or, for jobs reaped while still queued, their whole queued
    /// life).
    pub(crate) fn on_start(&self, wait: Duration) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.running.fetch_add(1, Ordering::Relaxed);
        self.started.fetch_add(1, Ordering::Relaxed);
        // Saturating, not `as_micros() as u64`: a Duration can hold ~10^19 µs
        // and a plain cast keeps only the low 64 bits.
        let micros = saturating_micros(wait);
        self.queue_wait_micros.fetch_add(micros, Ordering::Relaxed);
        self.queue_wait_max_micros
            .fetch_max(micros, Ordering::Relaxed);
        self.queue_wait.record(micros);
    }

    /// Records the submit→first-delivered-sample latency of a job (once per
    /// job, when its first sample reaches the consumer's channel).
    pub(crate) fn on_first_sample(&self, elapsed: Duration) {
        self.first_sample.record_duration(elapsed);
    }

    /// Records one scheduler round's wall-clock duration. Only called when
    /// the scheduler's `telemetry` flag is on — this is the one recording
    /// site on the per-round hot path.
    pub(crate) fn on_round(&self, duration: Duration) {
        self.round_duration.record_duration(duration);
    }

    /// Records a terminal job and returns its 0-based finish index.
    /// `delivered` is the number of samples that actually reached the
    /// consumer's channel — less than `outcome.samples` when the consumer
    /// hung up mid-job.
    pub(crate) fn on_finish(&self, outcome: &JobOutcome, delivered: u64) -> u64 {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.running.fetch_sub(1, Ordering::Relaxed);
        let bucket = match outcome.status {
            JobStatus::Completed => &self.completed,
            JobStatus::Cancelled => &self.cancelled,
            JobStatus::DeadlineExpired => &self.expired,
            JobStatus::Failed(_) | JobStatus::Panicked(_) => &self.failed,
        };
        bucket.fetch_add(1, Ordering::Relaxed);
        if outcome.degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
            self.walkers_degraded
                .fetch_add(outcome.degraded_walkers, Ordering::Relaxed);
        }
        self.samples_delivered
            .fetch_add(delivered, Ordering::Relaxed);
        self.isolated_query_cost
            .fetch_add(outcome.query_cost, Ordering::Relaxed);
        self.budget_refunded
            .fetch_add(outcome.budget_refunded, Ordering::Relaxed);
        let latency_micros = saturating_micros(outcome.latency);
        self.latency_micros
            .fetch_add(latency_micros, Ordering::Relaxed);
        self.latency.record(latency_micros);
        self.job_cost.record(outcome.query_cost);
        self.finished.fetch_add(1, Ordering::Relaxed)
    }

    /// Jobs currently queued or running (the admission-control measure;
    /// production code reserves through [`try_admit`](Self::try_admit)).
    #[cfg(test)]
    pub(crate) fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// A copy of every counter, combined with the shared pool cache's stats,
    /// the persistent worker pool's round-dispatch counters, and the
    /// cross-job history store's reuse counters.
    pub(crate) fn snapshot(
        &self,
        pool: QueryStats,
        worker_pool: PoolStats,
        history: HistoryStoreStats,
        resilience: ResilienceStats,
    ) -> ServiceMetricsSnapshot {
        let finished = self.finished.load(Ordering::Relaxed);
        let latency_micros = self.latency_micros.load(Ordering::Relaxed);
        let started = self.started.load(Ordering::Relaxed);
        let queue_wait_micros = self.queue_wait_micros.load(Ordering::Relaxed);
        ServiceMetricsSnapshot {
            jobs_submitted: self.submitted.load(Ordering::Relaxed),
            jobs_rejected: self.rejected.load(Ordering::Relaxed),
            jobs_queued: self.queued.load(Ordering::Relaxed),
            jobs_running: self.running.load(Ordering::Relaxed),
            jobs_completed: self.completed.load(Ordering::Relaxed),
            jobs_cancelled: self.cancelled.load(Ordering::Relaxed),
            jobs_expired: self.expired.load(Ordering::Relaxed),
            jobs_failed: self.failed.load(Ordering::Relaxed),
            jobs_degraded: self.degraded.load(Ordering::Relaxed),
            walkers_degraded: self.walkers_degraded.load(Ordering::Relaxed),
            jobs_finished: finished,
            samples_delivered: self.samples_delivered.load(Ordering::Relaxed),
            aggregate_query_cost: pool.unique_nodes,
            isolated_query_cost: self.isolated_query_cost.load(Ordering::Relaxed),
            budget_refunded: self.budget_refunded.load(Ordering::Relaxed),
            mean_latency: latency_micros
                .checked_div(finished)
                .map_or(Duration::ZERO, Duration::from_micros),
            jobs_started: started,
            mean_queue_wait: queue_wait_micros
                .checked_div(started)
                .map_or(Duration::ZERO, Duration::from_micros),
            max_queue_wait: Duration::from_micros(
                self.queue_wait_max_micros.load(Ordering::Relaxed),
            ),
            pool,
            worker_pool,
            history,
            resilience,
            queue_wait_histogram: self.queue_wait.snapshot(),
            latency_histogram: self.latency.snapshot(),
            first_sample_histogram: self.first_sample.snapshot(),
            job_cost_histogram: self.job_cost.snapshot(),
            round_duration_histogram: self.round_duration.snapshot(),
        }
    }
}

/// A point-in-time copy of the service's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceMetricsSnapshot {
    /// Requests admitted (lifetime).
    pub jobs_submitted: u64,
    /// Requests refused at the door (lifetime).
    pub jobs_rejected: u64,
    /// Jobs admitted but not yet scheduled (gauge).
    pub jobs_queued: u64,
    /// Jobs currently holding walker slots (gauge).
    pub jobs_running: u64,
    /// Jobs that met their quota or ran their budget out (lifetime).
    pub jobs_completed: u64,
    /// Jobs cancelled by the caller or a dropped stream (lifetime).
    pub jobs_cancelled: u64,
    /// Jobs stopped at their deadline (lifetime).
    pub jobs_expired: u64,
    /// Jobs stopped by an access error or sampler panic (lifetime).
    pub jobs_failed: u64,
    /// Jobs that finished as **degraded partials**: a walker was stopped by
    /// a transient fault, exhausted retries, or an open circuit breaker,
    /// and the job completed with the samples it had (lifetime). A subset
    /// of [`jobs_completed`](Self::jobs_completed) in the common case —
    /// degradation flags the outcome, it does not change the status.
    pub jobs_degraded: u64,
    /// Walkers stopped by a degradation, lifetime, across all jobs.
    pub walkers_degraded: u64,
    /// Total terminal jobs (= completed + cancelled + expired + failed).
    pub jobs_finished: u64,
    /// Samples streamed to consumers (lifetime).
    pub samples_delivered: u64,
    /// Distinct nodes the *service* paid for, across all jobs — the shared
    /// cache charges each node once no matter how many jobs touch it.
    pub aggregate_query_cost: u64,
    /// Sum of the finished jobs' own unique-node costs — what the same
    /// requests would have paid as isolated runs. The difference to
    /// [`aggregate_query_cost`](Self::aggregate_query_cost) is the
    /// cross-job shared-cache saving.
    pub isolated_query_cost: u64,
    /// Unused budget returned by early-stopped jobs (lifetime).
    pub budget_refunded: u64,
    /// Mean submit-to-done latency over finished jobs.
    pub mean_latency: Duration,
    /// Jobs that have left the queue so far (scheduled onto walker slots, or
    /// reaped from the queue as cancelled/expired) — the population behind
    /// the queue-wait aggregates below.
    pub jobs_started: u64,
    /// Mean admission→first-round wait over [`jobs_started`](Self::jobs_started)
    /// — how long a job sits admitted before the scheduler grants it walker
    /// slots (scheduling latency, as opposed to the sampling work itself).
    pub mean_queue_wait: Duration,
    /// Worst admission→first-round wait seen so far.
    pub max_queue_wait: Duration,
    /// The shared pool cache's raw counters.
    pub pool: QueryStats,
    /// The persistent worker pool's round-dispatch counters:
    /// `rounds_dispatched` (rounds fanned over the parked workers),
    /// `spawnless_rounds` (rounds run inline on the scheduler thread —
    /// 1-walker jobs, wound-down jobs, width-1 pools), `worker_wakeups`
    /// (times a parked worker woke and found work), and `workers` (threads
    /// spawned at pool startup — constant for the service's whole life:
    /// the zero-spawn guarantee made observable).
    pub worker_pool: PoolStats,
    /// The cross-job [`HistoryStore`](wnw_engine::HistoryStore)'s counters:
    /// snapshot `hits`/`misses`, `publications` (epoch bumps),
    /// `published_walks`, `reused_walks`, and `reuse_savings` — the
    /// unique-node query cost of the walk histories reusing jobs inherited
    /// instead of re-spending.
    pub history: HistoryStoreStats,
    /// The resilience layer's counters (retries, backoff waits, honored
    /// rate limits, breaker transitions, and the retries-per-query
    /// histogram), when the service was built with a
    /// [`ResilienceMonitor`](wnw_access::ResilienceMonitor) attached via
    /// [`ServiceBuilder::resilience`](crate::ServiceBuilder::resilience).
    /// All-zero otherwise.
    pub resilience: ResilienceStats,
    /// Distribution of admission→first-round queue waits (microseconds),
    /// over the same population as [`mean_queue_wait`](Self::mean_queue_wait).
    pub queue_wait_histogram: HistogramSnapshot,
    /// Distribution of submit-to-done latencies (microseconds) over
    /// finished jobs.
    pub latency_histogram: HistogramSnapshot,
    /// Distribution of submit→first-delivered-sample latencies
    /// (microseconds) — the paper's anytime promise made measurable. Only
    /// jobs that delivered at least one sample appear.
    pub first_sample_histogram: HistogramSnapshot,
    /// Distribution of per-job unique-node query costs over finished jobs.
    pub job_cost_histogram: HistogramSnapshot,
    /// Distribution of scheduler round durations (microseconds). Empty when
    /// the service runs with telemetry off.
    pub round_duration_histogram: HistogramSnapshot,
}

impl ServiceMetricsSnapshot {
    /// Unique-node queries saved by cross-job cache sharing, relative to
    /// isolated runs of the same finished jobs.
    pub fn shared_cache_savings(&self) -> u64 {
        self.isolated_query_cost
            .saturating_sub(self.aggregate_query_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobId;

    fn outcome(status: JobStatus, samples: usize, cost: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(0),
            status,
            samples,
            requested: samples,
            query_cost: cost,
            budget_consumed: cost,
            budget_refunded: 3,
            budget_exhausted: false,
            degraded: false,
            degraded_walkers: 0,
            rounds: 1,
            latency: Duration::from_micros(500),
            queue_wait: Duration::from_micros(100),
            finish_index: 0,
        }
    }

    #[test]
    fn lifecycle_counters_balance() {
        let metrics = ServiceMetrics::default();
        metrics.try_admit(2).unwrap();
        metrics.on_submit();
        metrics.try_admit(2).unwrap();
        metrics.on_submit();
        assert_eq!(metrics.try_admit(2), Err(2), "cap reached atomically");
        metrics.on_reject();
        assert_eq!(metrics.in_flight(), 2);
        metrics.on_start(Duration::from_micros(300));
        assert_eq!(metrics.in_flight(), 2);
        let first = metrics.on_finish(&outcome(JobStatus::Completed, 10, 40), 10);
        assert_eq!(first, 0);
        metrics.on_start(Duration::from_micros(100));
        let second = metrics.on_finish(&outcome(JobStatus::Cancelled, 2, 5), 2);
        assert_eq!(second, 1);
        assert_eq!(metrics.in_flight(), 0, "finishes release admission slots");

        let snap = metrics.snapshot(
            QueryStats {
                unique_nodes: 30,
                ..QueryStats::default()
            },
            PoolStats {
                workers: 3,
                rounds_dispatched: 12,
                spawnless_rounds: 5,
                worker_wakeups: 30,
            },
            HistoryStoreStats {
                hits: 2,
                misses: 1,
                publications: 3,
                published_walks: 90,
                reused_walks: 60,
                reuse_savings: 41,
                epoch: 3,
            },
            ResilienceStats::default(),
        );
        assert_eq!(snap.jobs_submitted, 2);
        assert_eq!(snap.jobs_rejected, 1);
        assert_eq!(snap.jobs_queued, 0);
        assert_eq!(snap.jobs_running, 0);
        assert_eq!(snap.jobs_completed, 1);
        assert_eq!(snap.jobs_cancelled, 1);
        assert_eq!(snap.jobs_finished, 2);
        assert_eq!(snap.samples_delivered, 12);
        assert_eq!(snap.isolated_query_cost, 45);
        assert_eq!(snap.aggregate_query_cost, 30);
        assert_eq!(snap.shared_cache_savings(), 15);
        assert_eq!(snap.budget_refunded, 6);
        assert_eq!(snap.mean_latency, Duration::from_micros(500));
        assert_eq!(snap.jobs_started, 2);
        assert_eq!(snap.mean_queue_wait, Duration::from_micros(200));
        assert_eq!(snap.max_queue_wait, Duration::from_micros(300));
        assert_eq!(snap.worker_pool.rounds_dispatched, 12);
        assert_eq!(snap.worker_pool.spawnless_rounds, 5);
        assert_eq!(snap.worker_pool.worker_wakeups, 30);
        assert_eq!(snap.worker_pool.workers, 3);
        assert_eq!(snap.history.hits, 2);
        assert_eq!(snap.history.reuse_savings, 41);
        assert_eq!(snap.history.epoch, 3);
        assert_eq!(snap.queue_wait_histogram.count, 2);
        assert_eq!(snap.queue_wait_histogram.max, 300);
        assert_eq!(snap.latency_histogram.count, 2);
        assert_eq!(snap.latency_histogram.min, 500);
        assert_eq!(snap.job_cost_histogram.count, 2);
        assert_eq!(snap.job_cost_histogram.sum, 45);
        assert!(snap.first_sample_histogram.is_empty());
        assert!(snap.round_duration_histogram.is_empty());
    }

    #[test]
    fn degraded_outcomes_count_jobs_and_walkers() {
        let metrics = ServiceMetrics::default();
        metrics.try_admit(8).unwrap();
        metrics.on_submit();
        metrics.on_start(Duration::ZERO);
        let mut partial = outcome(JobStatus::Completed, 4, 9);
        partial.degraded = true;
        partial.degraded_walkers = 3;
        metrics.on_finish(&partial, 4);
        metrics.try_admit(8).unwrap();
        metrics.on_submit();
        metrics.on_start(Duration::ZERO);
        metrics.on_finish(&outcome(JobStatus::Completed, 2, 3), 2);
        let snap = metrics.snapshot(
            QueryStats::default(),
            PoolStats::default(),
            HistoryStoreStats::default(),
            ResilienceStats::default(),
        );
        assert_eq!(snap.jobs_completed, 2, "degraded partials still complete");
        assert_eq!(snap.jobs_degraded, 1);
        assert_eq!(snap.walkers_degraded, 3);
    }

    #[test]
    fn first_sample_and_round_histograms_record() {
        let metrics = ServiceMetrics::default();
        metrics.on_first_sample(Duration::from_micros(250));
        metrics.on_round(Duration::from_micros(40));
        metrics.on_round(Duration::from_micros(60));
        let snap = metrics.snapshot(
            QueryStats::default(),
            PoolStats::default(),
            HistoryStoreStats::default(),
            ResilienceStats::default(),
        );
        assert_eq!(snap.first_sample_histogram.count, 1);
        assert_eq!(snap.first_sample_histogram.max, 250);
        assert_eq!(snap.round_duration_histogram.count, 2);
        assert_eq!(snap.round_duration_histogram.sum, 100);
    }

    #[test]
    fn over_u64_micros_durations_saturate_instead_of_truncating() {
        // Duration can hold ~1.8e25 µs; `as_micros() as u64` keeps the low
        // 64 bits, which for this value would truncate to a *small* number
        // and silently zero the queue-wait aggregates.
        let huge = Duration::from_secs(u64::MAX / 1_000_000 + 10);
        assert!(huge.as_micros() > u128::from(u64::MAX));
        let metrics = ServiceMetrics::default();
        metrics.try_admit(1).unwrap();
        metrics.on_submit();
        metrics.on_start(huge);
        let mut big_latency = outcome(JobStatus::Completed, 1, 1);
        big_latency.latency = huge;
        metrics.on_finish(&big_latency, 1);
        let snap = metrics.snapshot(
            QueryStats::default(),
            PoolStats::default(),
            HistoryStoreStats::default(),
            ResilienceStats::default(),
        );
        assert_eq!(snap.max_queue_wait, Duration::from_micros(u64::MAX));
        assert_eq!(snap.queue_wait_histogram.max, u64::MAX);
        assert_eq!(snap.latency_histogram.max, u64::MAX);
        assert_eq!(snap.mean_latency, Duration::from_micros(u64::MAX));
    }

    #[test]
    fn empty_snapshot_has_zero_latency() {
        let metrics = ServiceMetrics::default();
        let snap = metrics.snapshot(
            QueryStats::default(),
            PoolStats::default(),
            HistoryStoreStats::default(),
            ResilienceStats::default(),
        );
        assert_eq!(snap.mean_latency, Duration::ZERO);
        assert_eq!(snap.shared_cache_savings(), 0);
        assert_eq!(snap.jobs_started, 0);
        assert_eq!(snap.mean_queue_wait, Duration::ZERO);
        assert_eq!(snap.max_queue_wait, Duration::ZERO);
        assert_eq!(snap.worker_pool, PoolStats::default());
        assert_eq!(snap.history, HistoryStoreStats::default());
        assert!(snap.queue_wait_histogram.is_empty());
        assert!(snap.latency_histogram.is_empty());
        assert!(snap.first_sample_histogram.is_empty());
        assert!(snap.job_cost_histogram.is_empty());
        assert!(snap.round_duration_histogram.is_empty());
    }
}
