//! The long-lived [`SamplingService`]: admission control at the front,
//! the multi-job scheduler behind it.

use crate::metrics::{ServiceMetrics, ServiceMetricsSnapshot};
use crate::request::{AdmissionError, JobId, SampleRequest};
use crate::scheduler::{Scheduler, SchedulerConfig, Submission};
use crate::stream::{JobHandle, JobTicket, SampleStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use wnw_access::cached::CachedNetwork;
use wnw_access::counter::QueryStats;
use wnw_access::interface::{SocialNetwork, ThreadedNetwork};
use wnw_access::ResilienceMonitor;
use wnw_engine::{HistoryStore, HistoryStoreStats};
use wnw_runtime::{PoolStats, WorkerPool};
use wnw_telemetry::{TraceEvent, TraceEventKind, TraceLog, DEFAULT_TRACE_CAPACITY};

/// Tuning knobs of a [`SamplingService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Width of the service's one persistent [`WorkerPool`]: each round's
    /// walker draws are fanned over this many lanes (`pool_threads - 1`
    /// parked workers plus the scheduler thread). The pool is spawned once
    /// at [`ServiceBuilder::build`]; no round ever spawns a thread after
    /// that. Defaults to the available hardware parallelism.
    pub pool_threads: usize,
    /// Jobs interleaved concurrently by the scheduler; admitted jobs beyond
    /// this wait in the queue. Default 4.
    pub max_active: usize,
    /// Admission limit: submissions are rejected with
    /// [`AdmissionError::Saturated`] while this many jobs are queued or
    /// running. Default 64.
    pub max_in_flight: usize,
    /// Start with the scheduler gated: admitted jobs queue up but no round
    /// runs until [`SamplingService::resume`] — useful for tests and for
    /// staging a burst of submissions. Default off.
    pub start_paused: bool,
    /// Per-key walk cap of the cross-job [`HistoryStore`]: publications are
    /// refused once a key holds this many walks (0 = unlimited). Bounds the
    /// store's memory under sustained publishing traffic. Default
    /// [`wnw_core::history::DEFAULT_MAX_WALKS_PER_KEY`].
    pub history_max_walks: u64,
    /// Whether per-round telemetry (the round-duration histogram and the
    /// per-job lifecycle trace) is recorded. Job-level histograms and
    /// counters are always on; this flag sheds only the per-round costs.
    /// Default on.
    pub telemetry: bool,
    /// Total event capacity of the per-job lifecycle [`TraceLog`] (oldest
    /// events are evicted beyond it; ignored — treated as 0 — when
    /// [`telemetry`](Self::telemetry) is off). Default
    /// [`DEFAULT_TRACE_CAPACITY`].
    pub trace_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pool_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_active: 4,
            max_in_flight: 64,
            start_paused: false,
            history_max_walks: wnw_core::history::DEFAULT_MAX_WALKS_PER_KEY,
            telemetry: true,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Builder for a [`SamplingService`].
#[derive(Debug)]
pub struct ServiceBuilder<N> {
    network: N,
    config: ServiceConfig,
    resilience: Option<ResilienceMonitor>,
}

impl<N: ThreadedNetwork + 'static> ServiceBuilder<N> {
    /// Sets the worker-pool width.
    pub fn pool_threads(mut self, threads: usize) -> Self {
        self.config.pool_threads = threads.max(1);
        self
    }

    /// Sets how many jobs the scheduler interleaves concurrently.
    pub fn max_active(mut self, jobs: usize) -> Self {
        self.config.max_active = jobs.max(1);
        self
    }

    /// Sets the admission limit (queued + running jobs).
    pub fn max_in_flight(mut self, jobs: usize) -> Self {
        self.config.max_in_flight = jobs.max(1);
        self
    }

    /// Starts the service gated; call [`SamplingService::resume`] to begin
    /// scheduling.
    pub fn start_paused(mut self) -> Self {
        self.config.start_paused = true;
        self
    }

    /// Sets the cross-job history store's per-key walk cap (0 = unlimited).
    pub fn history_max_walks(mut self, walks: u64) -> Self {
        self.config.history_max_walks = walks;
        self
    }

    /// Turns per-round telemetry (round-duration histogram + lifecycle
    /// trace) on or off. Default on.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.config.telemetry = enabled;
        self
    }

    /// Sets the lifecycle trace ring's total event capacity.
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.config.trace_capacity = events;
        self
    }

    /// Attaches the [`ResilienceMonitor`] of the
    /// [`ResilientNetwork`](wnw_access::ResilientNetwork) the service is
    /// built over, so retry/backoff/breaker counters appear in
    /// [`SamplingService::metrics`] (and degraded breaker state in
    /// frontends' health endpoints). The service itself never consults the
    /// monitor — it only snapshots it.
    pub fn resilience(mut self, monitor: ResilienceMonitor) -> Self {
        self.resilience = Some(monitor);
        self
    }

    /// Spawns the worker pool and the scheduler thread, and returns the
    /// running service. These are the service's only thread spawns: every
    /// round of every future job reuses the pool built here.
    pub fn build(self) -> SamplingService<N> {
        let cache = Arc::new(CachedNetwork::new(Arc::new(self.network)));
        let metrics = Arc::new(ServiceMetrics::default());
        let paused = Arc::new(AtomicBool::new(self.config.start_paused));
        let pool = Arc::new(WorkerPool::new(self.config.pool_threads));
        let history = Arc::new(HistoryStore::with_max_walks(self.config.history_max_walks));
        let trace = Arc::new(TraceLog::new(if self.config.telemetry {
            self.config.trace_capacity
        } else {
            0
        }));
        let (tx, rx) = channel();
        let scheduler = Scheduler::new(
            Arc::clone(&cache),
            Arc::clone(&metrics),
            SchedulerConfig {
                max_active: self.config.max_active,
                telemetry: self.config.telemetry,
            },
            Arc::clone(&pool),
            Arc::clone(&history),
            Arc::clone(&trace),
            Arc::clone(&paused),
            rx,
        );
        let handle = std::thread::Builder::new()
            .name("wnw-service-scheduler".into())
            .spawn(move || scheduler.run())
            .expect("spawn scheduler thread");
        SamplingService {
            cache,
            metrics,
            pool,
            history,
            trace,
            paused,
            tx: Some(tx),
            scheduler: Some(handle),
            next_id: AtomicU64::new(0),
            config: self.config,
            resilience: self.resilience,
        }
    }
}

/// A long-lived sampling service: many concurrent [`SampleRequest`]s against
/// one shared network handle, scheduled fairly over one worker pool, results
/// streamed back as they land.
///
/// See the [crate docs](crate) for the full model; in short:
///
/// * **admission control** — requests beyond `max_in_flight` are rejected at
///   the door rather than queued unboundedly;
/// * **fair, priority-weighted scheduling** — jobs advance round by round,
///   interleaved, so a huge job cannot starve a small one;
/// * **streaming delivery** — a [`SampleStream`] yields
///   `Sample`/`Progress`/`Done` events, not one end-of-job report;
/// * **shared cache, isolated budgets** — all jobs ride one
///   [`CachedNetwork`] (each node paid for once, service-wide) while every
///   request meters and budgets its own traffic;
/// * **reproducibility** — a request's accepted-sample multiset depends
///   only on its job (spec, seed, walkers, budget), not on the pool width
///   or the co-load.
#[derive(Debug)]
pub struct SamplingService<N: ThreadedNetwork + 'static> {
    cache: Arc<CachedNetwork<Arc<N>>>,
    metrics: Arc<ServiceMetrics>,
    /// The one persistent worker pool every job's rounds execute on
    /// (shared with the scheduler thread; kept here for stats snapshots).
    pool: Arc<WorkerPool>,
    /// The service-scoped cross-job history store (shared with the
    /// scheduler thread; kept here for stats snapshots).
    history: Arc<HistoryStore>,
    /// The per-job lifecycle trace ring (shared with the scheduler thread;
    /// disabled — capacity 0 — when the service runs with telemetry off).
    trace: Arc<TraceLog>,
    paused: Arc<AtomicBool>,
    tx: Option<Sender<Submission>>,
    scheduler: Option<JoinHandle<()>>,
    next_id: AtomicU64,
    config: ServiceConfig,
    /// The resilience layer's stats handle, when the service was built over
    /// a `ResilientNetwork` and given its monitor via
    /// [`ServiceBuilder::resilience`].
    resilience: Option<ResilienceMonitor>,
}

impl<N: ThreadedNetwork + 'static> SamplingService<N> {
    /// A service over `network` with the default configuration.
    pub fn new(network: N) -> Self {
        Self::builder(network).build()
    }

    /// A configurable service builder over `network`.
    pub fn builder(network: N) -> ServiceBuilder<N> {
        ServiceBuilder {
            network,
            config: ServiceConfig::default(),
            resilience: None,
        }
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The wrapped network handle.
    pub fn network(&self) -> &N {
        self.cache.inner()
    }

    /// Submits a request. On admission, returns the job's id, its event
    /// stream, and a cancellation handle; the scheduler starts (or queues)
    /// the job immediately.
    pub fn submit(&self, request: SampleRequest) -> Result<JobTicket, AdmissionError> {
        if request.job.samples == 0 {
            self.metrics.on_reject();
            return Err(AdmissionError::Invalid("request asks for zero samples"));
        }
        if request.job.walkers == 0 {
            self.metrics.on_reject();
            return Err(AdmissionError::Invalid("request has zero walkers"));
        }
        // When the network knows its size, reject out-of-range start nodes
        // at the door instead of failing the job mid-walk.
        if let (Some(start), Some(n)) = (request.job.start_node, self.cache.node_count_hint()) {
            if start.0 as usize >= n {
                self.metrics.on_reject();
                return Err(AdmissionError::Invalid("start_node is not in the network"));
            }
        }
        // Reserve an in-flight slot atomically — concurrent submitters
        // cannot race past the cap between a check and an increment.
        if let Err(in_flight) = self.metrics.try_admit(self.config.max_in_flight as u64) {
            self.metrics.on_reject();
            return Err(AdmissionError::Saturated {
                in_flight: in_flight as usize,
                limit: self.config.max_in_flight,
            });
        }
        self.metrics.on_submit();
        let tx = match self.tx.as_ref() {
            Some(tx) => tx,
            None => {
                self.metrics.on_submit_undone();
                return Err(AdmissionError::ShuttingDown);
            }
        };

        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (events, rx) = channel();
        let cancel = Arc::new(AtomicBool::new(false));
        // Trace the submission *before* handing it to the scheduler — once
        // the send lands, the scheduler thread may record `Admitted`
        // concurrently, and the trace's per-job order is insertion order.
        self.trace.record(id.0, TraceEventKind::Submitted);
        if tx
            .send(Submission {
                id,
                request,
                events,
                cancel: Arc::clone(&cancel),
                submitted_at: Instant::now(),
            })
            .is_err()
        {
            // The scheduler thread is gone (it only exits when the service
            // is torn down, or after a scheduler bug); undo the accounting.
            // Close the trace too: every `Submitted` job gets exactly one
            // `Finished`, whichever path it dies on.
            self.trace
                .record(id.0, TraceEventKind::Finished { status: "failed" });
            self.metrics.on_submit_undone();
            return Err(AdmissionError::ShuttingDown);
        }
        Ok(JobTicket {
            id,
            stream: SampleStream::new(rx),
            handle: JobHandle::new(id, cancel),
        })
    }

    /// A live snapshot of the service metrics (lock-free reads).
    pub fn metrics(&self) -> ServiceMetricsSnapshot {
        self.metrics.snapshot(
            self.cache.query_stats(),
            self.pool.stats(),
            self.history.stats(),
            self.resilience
                .as_ref()
                .map(|m| m.stats())
                .unwrap_or_default(),
        )
    }

    /// The attached [`ResilienceMonitor`], if the service was built with
    /// one (see [`ServiceBuilder::resilience`]).
    pub fn resilience(&self) -> Option<&ResilienceMonitor> {
        self.resilience.as_ref()
    }

    /// The cross-job history store's counters (also embedded in
    /// [`metrics`](Self::metrics) as
    /// [`ServiceMetricsSnapshot::history`]).
    pub fn history_stats(&self) -> HistoryStoreStats {
        self.history.stats()
    }

    /// The per-job lifecycle trace log (disabled — it records nothing —
    /// when the service was built with [`ServiceBuilder::telemetry`] off).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The retained lifecycle events of one job, oldest first. Empty when
    /// the job is unknown, its events were evicted from the ring, or
    /// telemetry is off.
    pub fn trace_of(&self, id: JobId) -> Vec<TraceEvent> {
        self.trace.events_for(id.0)
    }

    /// The shared pool cache's raw counters: `unique_nodes` is the
    /// aggregate query cost the service has paid across all jobs.
    pub fn pool_stats(&self) -> QueryStats {
        self.cache.query_stats()
    }

    /// The persistent worker pool's round-dispatch counters (see
    /// [`PoolStats`]): how many rounds were fanned over the parked workers,
    /// how many ran spawnless on the scheduler thread, and how often a
    /// worker woke for work.
    pub fn worker_pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Releases a [`start_paused`](ServiceBuilder::start_paused) gate (and
    /// is harmless otherwise).
    pub fn resume(&self) {
        self.paused.store(false, Ordering::Relaxed);
    }

    /// Whether the scheduler gate is currently closed.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Relaxed)
    }

    /// Shuts the service down gracefully: no further submissions are
    /// accepted, every in-flight job runs (or cancels) to its terminal
    /// event, and the final metrics snapshot is returned.
    pub fn shutdown(mut self) -> ServiceMetricsSnapshot {
        self.teardown();
        self.metrics()
    }

    fn teardown(&mut self) {
        // A paused scheduler would never drain; release the gate first.
        self.paused.store(false, Ordering::Relaxed);
        drop(self.tx.take());
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl<N: ThreadedNetwork + 'static> Drop for SamplingService<N> {
    /// Dropping the service drains in-flight jobs like
    /// [`shutdown`](Self::shutdown) (cancel jobs first for a fast exit).
    fn drop(&mut self) {
        self.teardown();
    }
}
