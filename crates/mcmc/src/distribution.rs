//! Exact distribution computations on the full graph.
//!
//! These are *ground-truth* tools: they read the whole topology, which a
//! third-party sampler never could. The experiments use them to
//!
//! * plot the minimum / maximum sampling probability against walk length
//!   (Figure 1),
//! * compute the relative point-wise distance Δ(t) of Definition 3,
//! * provide the theoretical sampling distribution that the exact-bias study
//!   (Figure 12 / Table 1) compares empirical distributions against.

use crate::transition::{RandomWalkKind, TargetDistribution};
use wnw_graph::{Graph, NodeId};

/// A row-stochastic transition matrix stored sparsely per node.
///
/// `rows[u]` lists `(v, T(u, v))` for `v ∈ N(u)`, and `self_loops[u]` holds
/// `T(u, u)` (non-zero only for MHRW).
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    rows: Vec<Vec<(NodeId, f64)>>,
    self_loops: Vec<f64>,
    kind: RandomWalkKind,
}

impl TransitionMatrix {
    /// Builds the transition matrix of `kind` on `graph`.
    pub fn new(graph: &Graph, kind: RandomWalkKind) -> Self {
        let n = graph.node_count();
        let mut rows = Vec::with_capacity(n);
        let mut self_loops = vec![0.0; n];
        for u in graph.nodes() {
            let du = graph.degree(u);
            let mut row = Vec::with_capacity(du);
            if du > 0 {
                for &v in graph.neighbors(u) {
                    let p = kind.edge_probability(du, graph.degree(v));
                    row.push((v, p));
                }
                let outgoing: f64 = row.iter().map(|&(_, p)| p).sum();
                self_loops[u.index()] = (1.0 - outgoing).max(0.0);
            } else {
                // An isolated node can only stay where it is.
                self_loops[u.index()] = 1.0;
            }
            rows.push(row);
        }
        TransitionMatrix {
            rows,
            self_loops,
            kind,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// Returns the lazy version `(1 − α)·T + α·I` of this matrix.
    ///
    /// The paper's Footnote 1 assumes every node has a (possibly arbitrarily
    /// small) self-transition probability so the chain is aperiodic; this is
    /// required on bipartite case-study graphs (hypercubes, trees) where a
    /// plain SRW alternates sides forever.
    pub fn lazy(&self, alpha: f64) -> TransitionMatrix {
        assert!(
            (0.0..1.0).contains(&alpha),
            "laziness must be in [0, 1), got {alpha}"
        );
        let rows = self
            .rows
            .iter()
            .map(|row| row.iter().map(|&(v, p)| (v, (1.0 - alpha) * p)).collect())
            .collect();
        let self_loops = self
            .self_loops
            .iter()
            .map(|&p| (1.0 - alpha) * p + alpha)
            .collect();
        TransitionMatrix {
            rows,
            self_loops,
            kind: self.kind,
        }
    }

    /// The walk design this matrix realises.
    pub fn kind(&self) -> RandomWalkKind {
        self.kind
    }

    /// `T(u, u)`.
    pub fn self_loop(&self, u: NodeId) -> f64 {
        self.self_loops[u.index()]
    }

    /// The sparse row of node `u` (neighbors only; add
    /// [`self_loop`](Self::self_loop) for the diagonal).
    pub fn row(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.rows[u.index()]
    }

    /// One step of distribution evolution: returns `p · T`.
    pub fn step_distribution(&self, p: &[f64]) -> Vec<f64> {
        assert_eq!(p.len(), self.node_count(), "distribution length mismatch");
        let mut next = vec![0.0; p.len()];
        for (u, &mass) in p.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            next[u] += mass * self.self_loops[u];
            for &(v, t) in &self.rows[u] {
                next[v.index()] += mass * t;
            }
        }
        next
    }

    /// The exact sampling distribution `p_t` of a walk of `t` steps started
    /// at `start` (`p_0` is the indicator of `start`).
    pub fn distribution_after(&self, start: NodeId, t: usize) -> Vec<f64> {
        let mut p = vec![0.0; self.node_count()];
        p[start.index()] = 1.0;
        for _ in 0..t {
            p = self.step_distribution(&p);
        }
        p
    }

    /// The sequence `p_0, p_1, …, p_t` (useful when a figure needs every
    /// prefix, e.g. Figure 1's min/max curves).
    pub fn distribution_trajectory(&self, start: NodeId, t: usize) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(t + 1);
        let mut p = vec![0.0; self.node_count()];
        p[start.index()] = 1.0;
        out.push(p.clone());
        for _ in 0..t {
            p = self.step_distribution(&p);
            out.push(p.clone());
        }
        out
    }

    /// The design's stationary distribution on `graph` (normalised).
    ///
    /// SRW: `π(v) = d(v) / 2|E|`; MHRW: uniform. Both follow from detailed
    /// balance and are exactly what Section 2.2 states.
    pub fn stationary_distribution(graph: &Graph, kind: RandomWalkKind) -> Vec<f64> {
        let n = graph.node_count();
        match kind.target() {
            TargetDistribution::Uniform => vec![1.0 / n as f64; n],
            TargetDistribution::DegreeProportional => {
                let total = 2.0 * graph.edge_count() as f64;
                graph
                    .nodes()
                    .map(|v| graph.degree(v) as f64 / total)
                    .collect()
            }
        }
    }

    /// Relative point-wise distance Δ(t) of Definition 3:
    /// `max_{u, v} |T^t(u, v) − π(v)| / π(v)`.
    ///
    /// Requires evolving the distribution from *every* starting node, so this
    /// is only feasible for small case-study graphs.
    pub fn relative_pointwise_distance(&self, graph: &Graph, t: usize) -> f64 {
        let pi = Self::stationary_distribution(graph, self.kind);
        let mut worst: f64 = 0.0;
        for u in graph.nodes() {
            let p = self.distribution_after(u, t);
            for v in graph.nodes() {
                let target = pi[v.index()];
                if target > 0.0 {
                    let d = (p[v.index()] - target).abs() / target;
                    worst = worst.max(d);
                }
            }
        }
        worst
    }

    /// Burn-in length under Definition 3: the smallest `t ≤ max_t` with
    /// `Δ(t) ≤ epsilon`, or `None` if no such `t` exists within the cap.
    pub fn burn_in_length(&self, graph: &Graph, epsilon: f64, max_t: usize) -> Option<usize> {
        (0..=max_t).find(|&t| self.relative_pointwise_distance(graph, t) <= epsilon)
    }
}

/// ℓ∞ (variation) distance between two probability vectors:
/// `max_v |p(v) − q(v)|`.
pub fn linf_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    p.iter()
        .zip(q)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Total variation distance: `½ Σ_v |p(v) − q(v)|`.
pub fn total_variation_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Kullback–Leibler divergence `KL(p ‖ q) = Σ_v p(v) ln(p(v)/q(v))`.
///
/// Terms with `p(v) = 0` contribute 0; terms with `q(v) = 0 < p(v)` would be
/// infinite, so `q` is floored at `1e-12` — the same smoothing any empirical
/// comparison needs (Table 1 compares an empirical distribution that may
/// miss nodes entirely).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    p.iter()
        .zip(q)
        .filter(|(&a, _)| a > 0.0)
        .map(|(&a, &b)| a * (a / b.max(1e-12)).ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_graph::generators::classic::{complete, cycle, star};
    use wnw_graph::generators::random::barabasi_albert;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn rows_are_stochastic() {
        let g = barabasi_albert(60, 3, 1).unwrap();
        for kind in [RandomWalkKind::Simple, RandomWalkKind::MetropolisHastings] {
            let t = TransitionMatrix::new(&g, kind);
            for u in g.nodes() {
                let sum: f64 = t.row(u).iter().map(|&(_, p)| p).sum::<f64>() + t.self_loop(u);
                assert_close(sum, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn srw_has_no_self_loops_mhrw_does_on_stars() {
        let g = star(6);
        let srw = TransitionMatrix::new(&g, RandomWalkKind::Simple);
        assert_eq!(srw.self_loop(NodeId(0)), 0.0);
        let mhrw = TransitionMatrix::new(&g, RandomWalkKind::MetropolisHastings);
        // Hub degree 5, each leaf degree 1: T(hub, leaf) = 1/5·min(1,5) = 1/5,
        // so no self-loop at the hub; each leaf proposes the hub and accepts
        // with 1/5, so T(leaf, leaf) = 4/5.
        assert_close(mhrw.self_loop(NodeId(0)), 0.0, 1e-12);
        assert_close(mhrw.self_loop(NodeId(1)), 0.8, 1e-12);
    }

    #[test]
    fn distribution_evolution_preserves_mass() {
        let g = barabasi_albert(40, 3, 2).unwrap();
        let t = TransitionMatrix::new(&g, RandomWalkKind::MetropolisHastings);
        let p = t.distribution_after(NodeId(0), 13);
        assert_close(p.iter().sum::<f64>(), 1.0, 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn distribution_on_cycle_spreads_symmetrically() {
        let g = cycle(9);
        let t = TransitionMatrix::new(&g, RandomWalkKind::Simple);
        let p = t.distribution_after(NodeId(0), 4);
        // Symmetric around the start: p(1) == p(8), p(2) == p(7) ...
        assert_close(p[1], p[8], 1e-12);
        assert_close(p[2], p[7], 1e-12);
        assert_close(p[3], p[6], 1e-12);
    }

    #[test]
    fn stationary_distributions_are_correct_and_fixed_points() {
        let g = barabasi_albert(50, 3, 3).unwrap();
        for kind in [RandomWalkKind::Simple, RandomWalkKind::MetropolisHastings] {
            let t = TransitionMatrix::new(&g, kind);
            let pi = TransitionMatrix::stationary_distribution(&g, kind);
            assert_close(pi.iter().sum::<f64>(), 1.0, 1e-9);
            let next = t.step_distribution(&pi);
            for (a, b) in pi.iter().zip(&next) {
                assert_close(*a, *b, 1e-9);
            }
        }
    }

    #[test]
    fn srw_converges_to_degree_proportional() {
        let g = barabasi_albert(30, 3, 4).unwrap();
        let t = TransitionMatrix::new(&g, RandomWalkKind::Simple);
        // Lazy trick not needed: BA graphs are non-bipartite w.h.p.; evolve
        // long enough and compare.
        let p = t.distribution_after(NodeId(0), 2000);
        let pi = TransitionMatrix::stationary_distribution(&g, RandomWalkKind::Simple);
        assert!(linf_distance(&p, &pi) < 1e-6);
    }

    #[test]
    fn trajectory_matches_individual_evolutions() {
        let g = cycle(7);
        let t = TransitionMatrix::new(&g, RandomWalkKind::Simple);
        let traj = t.distribution_trajectory(NodeId(0), 5);
        assert_eq!(traj.len(), 6);
        for (step, p) in traj.iter().enumerate() {
            let direct = t.distribution_after(NodeId(0), step);
            assert!(linf_distance(p, &direct) < 1e-12);
        }
    }

    #[test]
    fn relative_pointwise_distance_decreases() {
        let g = complete(8);
        let t = TransitionMatrix::new(&g, RandomWalkKind::MetropolisHastings);
        let d1 = t.relative_pointwise_distance(&g, 1);
        let d5 = t.relative_pointwise_distance(&g, 5);
        assert!(d5 <= d1 + 1e-12, "Δ(5) = {d5} > Δ(1) = {d1}");
        let burn = t.burn_in_length(&g, 0.05, 50);
        assert!(burn.is_some());
    }

    #[test]
    fn burn_in_length_can_time_out() {
        // A 2-cycle (single edge) is periodic under SRW: it never converges.
        let g = cycle(2);
        let t = TransitionMatrix::new(&g, RandomWalkKind::Simple);
        assert_eq!(t.burn_in_length(&g, 0.01, 20), None);
    }

    #[test]
    fn distance_functions() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.25, 0.25, 0.5];
        assert_close(linf_distance(&p, &q), 0.5, 1e-12);
        assert_close(total_variation_distance(&p, &q), 0.5, 1e-12);
        assert!(kl_divergence(&p, &q) > 0.0);
        assert_close(kl_divergence(&p, &p), 0.0, 1e-12);
        // KL is finite even when q has zero mass where p does not.
        assert!(kl_divergence(&p, &[0.5, 0.5, 0.0]).is_finite());
    }

    #[test]
    fn lazy_matrix_is_stochastic_and_aperiodic() {
        // A 4-cycle is bipartite: the plain SRW never mixes, the lazy one does.
        let g = cycle(4);
        let t = TransitionMatrix::new(&g, RandomWalkKind::Simple);
        let plain = t.distribution_after(NodeId(0), 101);
        // Odd step count on a bipartite graph: the start side has zero mass.
        assert_eq!(plain[0], 0.0);
        let lazy = t.lazy(0.5);
        for u in g.nodes() {
            let sum: f64 = lazy.row(u).iter().map(|&(_, p)| p).sum::<f64>() + lazy.self_loop(u);
            assert_close(sum, 1.0, 1e-12);
        }
        let mixed = lazy.distribution_after(NodeId(0), 200);
        for &p in &mixed {
            assert_close(p, 0.25, 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "laziness")]
    fn lazy_rejects_bad_alpha() {
        let g = cycle(4);
        let _ = TransitionMatrix::new(&g, RandomWalkKind::Simple).lazy(1.0);
    }

    #[test]
    fn isolated_nodes_self_loop() {
        use wnw_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.ensure_nodes(3);
        b.add_edge(0u32, 1u32);
        let g = b.build();
        let t = TransitionMatrix::new(&g, RandomWalkKind::Simple);
        assert_eq!(t.self_loop(NodeId(2)), 1.0);
        let p = t.distribution_after(NodeId(2), 10);
        assert_close(p[2], 1.0, 1e-12);
    }
}
