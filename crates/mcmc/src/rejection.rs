//! Acceptance-rejection sampling (Section 2.3 / 6.3.2).
//!
//! Given a node sampled with probability `p(u)` while the desired target
//! distribution assigns it `q(u)`, the sample is accepted with probability
//!
//! ```text
//! β(u) = q(u) / p(u) · min_v p(v)/q(v)
//! ```
//!
//! The awkward part in practice is the scaling factor `min_v p(v)/q(v)`: with
//! no global topology knowledge it cannot be computed exactly, so the paper
//! bootstraps it from the sampling probabilities estimated so far and takes
//! their **10th percentile** (Section 6.3.2). A manual threshold is also
//! supported for the corresponding ablation.

/// How the rejection-sampling scaling factor `min_v p(v)/q(v)` is obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalingFactorPolicy {
    /// Use the exact minimum of the observed `p(v)/q(v)` ratios. Unbiased as
    /// long as the true minimiser has been observed; conservative (more
    /// rejections) otherwise.
    ExactMin,
    /// Use the given percentile (in `[0, 100]`) of observed ratios — the
    /// paper uses the 10th percentile. Values above the true minimum trade a
    /// little bias for fewer rejections.
    Percentile(f64),
    /// A fixed, manually chosen scaling factor.
    Manual(f64),
}

impl Default for ScalingFactorPolicy {
    fn default() -> Self {
        ScalingFactorPolicy::Percentile(10.0)
    }
}

impl ScalingFactorPolicy {
    /// Resolves the scaling factor from the observed `p(v)/q(v)` ratios.
    ///
    /// Returns `None` when no ratios are available (the caller should then
    /// accept the sample unconditionally or defer).
    pub fn resolve(&self, observed_ratios: &[f64]) -> Option<f64> {
        match *self {
            ScalingFactorPolicy::Manual(value) => Some(value),
            ScalingFactorPolicy::ExactMin => observed_ratios
                .iter()
                .copied()
                .filter(|r| r.is_finite() && *r > 0.0)
                .fold(None, |acc: Option<f64>, r| {
                    Some(acc.map_or(r, |a| a.min(r)))
                }),
            ScalingFactorPolicy::Percentile(pct) => {
                let mut clean: Vec<f64> = observed_ratios
                    .iter()
                    .copied()
                    .filter(|r| r.is_finite() && *r > 0.0)
                    .collect();
                if clean.is_empty() {
                    return None;
                }
                clean.sort_by(|a, b| a.partial_cmp(b).expect("filtered NaNs"));
                let pct = pct.clamp(0.0, 100.0);
                let idx = ((pct / 100.0) * (clean.len() - 1) as f64).round() as usize;
                Some(clean[idx])
            }
        }
    }
}

/// The acceptance probability `β(u)` for a node sampled with probability
/// `sampled_prob` whose (unnormalised) target weight is `target_weight`,
/// given the resolved scaling factor.
///
/// Unnormalised weights are fine because the normalising constant cancels
/// between numerator and scaling factor; the result is clamped to `[0, 1]`
/// (a scaling factor above the true minimum can push the raw value past 1,
/// which is exactly the mild under-sampling bias Section 2.3 discusses).
pub fn acceptance_probability(sampled_prob: f64, target_weight: f64, scaling_factor: f64) -> f64 {
    if sampled_prob <= 0.0 || target_weight <= 0.0 {
        return 0.0;
    }
    ((target_weight / sampled_prob) * scaling_factor).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_min_policy_takes_minimum() {
        let policy = ScalingFactorPolicy::ExactMin;
        assert_eq!(policy.resolve(&[0.5, 0.2, 0.9]), Some(0.2));
        assert_eq!(policy.resolve(&[]), None);
        assert_eq!(policy.resolve(&[f64::INFINITY, 0.4]), Some(0.4));
    }

    #[test]
    fn percentile_policy_matches_sorted_index() {
        let policy = ScalingFactorPolicy::Percentile(10.0);
        let ratios: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // 10th percentile of 1..=100 lands near 10.9 -> index 10 -> value 11.
        let resolved = policy.resolve(&ratios).unwrap();
        assert!((9.0..=12.0).contains(&resolved), "{resolved}");
        assert_eq!(
            ScalingFactorPolicy::Percentile(0.0).resolve(&ratios),
            Some(1.0)
        );
        assert_eq!(
            ScalingFactorPolicy::Percentile(100.0).resolve(&ratios),
            Some(100.0)
        );
        assert_eq!(policy.resolve(&[]), None);
    }

    #[test]
    fn manual_policy_passes_through() {
        assert_eq!(ScalingFactorPolicy::Manual(0.123).resolve(&[]), Some(0.123));
    }

    #[test]
    fn acceptance_probability_bounds() {
        assert_eq!(acceptance_probability(0.0, 1.0, 0.5), 0.0);
        assert_eq!(acceptance_probability(0.5, 0.0, 0.5), 0.0);
        assert_eq!(acceptance_probability(1e-9, 1.0, 1.0), 1.0); // clamped
        let beta = acceptance_probability(0.2, 1.0, 0.1);
        assert!((beta - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejection_corrects_a_biased_sampler_to_uniform() {
        // Three "nodes" sampled with probabilities (0.6, 0.3, 0.1); target is
        // uniform. With the exact scaling factor min p/q = 0.1/(1/3) => use
        // unnormalised weights: scale = min p(v)/w(v) = 0.1.
        let p = [0.6, 0.3, 0.1];
        let scale = ScalingFactorPolicy::ExactMin
            .resolve(&p.iter().map(|&x| x / 1.0).collect::<Vec<_>>())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut accepted = [0usize; 3];
        for _ in 0..300_000 {
            let r: f64 = rng.gen();
            let node = if r < p[0] {
                0
            } else if r < p[0] + p[1] {
                1
            } else {
                2
            };
            let beta = acceptance_probability(p[node], 1.0, scale);
            if rng.gen::<f64>() < beta {
                accepted[node] += 1;
            }
        }
        let total: usize = accepted.iter().sum();
        for &count in &accepted {
            let frac = count as f64 / total as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "{accepted:?}");
        }
    }
}
