//! Traditional burn-in-based samplers — the baselines WALK-ESTIMATE replaces.
//!
//! * [`ManyShortRunsSampler`] — the paper's main comparison point
//!   (Section 6.1): each sample comes from a fresh walk that is run until the
//!   Geweke monitor declares convergence, so samples are i.i.d. but every
//!   sample pays the full burn-in cost.
//! * [`OneLongRunSampler`] — pays burn-in once and then emits every
//!   subsequent node, producing cheaper but *correlated* samples; the
//!   [`effective_sample_size`] function quantifies how much the correlation
//!   hurts (Equation 25).

use crate::convergence::GewekeMonitor;
use crate::sampler::{SampleRecord, Sampler};
use crate::transition::{RandomWalkKind, TargetDistribution};
use crate::walker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wnw_access::{Result, SocialNetwork};
use wnw_graph::NodeId;

/// Configuration shared by the burn-in samplers.
#[derive(Debug, Clone, Copy)]
pub struct BurnInConfig {
    /// Geweke threshold (paper default 0.1; 0.01 for the strict variant).
    pub geweke_threshold: f64,
    /// Minimum walk length before the monitor may declare convergence.
    pub min_steps: usize,
    /// Hard cap on the walk length per sample, as a safety valve on graphs
    /// that mix extremely slowly (e.g. barbell graphs).
    pub max_steps: usize,
    /// How often (in steps) the monitor is evaluated.
    pub check_interval: usize,
}

impl Default for BurnInConfig {
    /// Defaults follow the paper's setup: Geweke threshold `Z ≤ 0.1`, with a
    /// minimum walk of 100 steps before a verdict — already a *generous*
    /// reading of the burn-in lengths the OSN-sampling literature uses (the
    /// studies cited in Section 1.1 burn in for hundreds to thousands of
    /// steps), so the baselines are not handicapped.
    fn default() -> Self {
        BurnInConfig {
            geweke_threshold: 0.1,
            min_steps: 100,
            max_steps: 20_000,
            check_interval: 25,
        }
    }
}

/// "Many short runs": one independent converged walk per sample.
pub struct ManyShortRunsSampler<N: SocialNetwork> {
    osn: N,
    kind: RandomWalkKind,
    start: NodeId,
    config: BurnInConfig,
    rng: StdRng,
    /// Walk lengths of completed draws (diagnostics / tests).
    walk_lengths: Vec<usize>,
}

impl<N: SocialNetwork> ManyShortRunsSampler<N> {
    /// Creates a sampler that starts every walk from `osn.seed_node()`.
    pub fn new(osn: N, kind: RandomWalkKind, config: BurnInConfig, seed: u64) -> Self {
        let start = osn.seed_node();
        ManyShortRunsSampler {
            osn,
            kind,
            start,
            config,
            rng: StdRng::seed_from_u64(seed),
            walk_lengths: Vec::new(),
        }
    }

    /// Overrides the starting node.
    pub fn with_start(mut self, start: NodeId) -> Self {
        self.start = start;
        self
    }

    /// Walk lengths used by each completed draw so far.
    pub fn walk_lengths(&self) -> &[usize] {
        &self.walk_lengths
    }

    /// The wrapped access layer.
    pub fn network(&self) -> &N {
        &self.osn
    }
}

impl<N: SocialNetwork> Sampler for ManyShortRunsSampler<N> {
    fn draw(&mut self) -> Result<SampleRecord> {
        let mut monitor = GewekeMonitor::new(self.config.geweke_threshold)
            .with_min_samples(self.config.min_steps.max(4));
        let mut current = self.start;
        let mut steps = 0usize;
        // Observe the starting node's degree too: the monitor tracks the
        // degree sequence along the walk, the standard choice of attribute.
        let start_degree = self.osn.degree(current)? as f64;
        monitor.observe(start_degree);
        loop {
            current = walker::step(&self.osn, self.kind, current, &mut self.rng)?;
            steps += 1;
            let degree = self.osn.degree(current)? as f64;
            monitor.observe(degree);
            let reached_cap = steps >= self.config.max_steps;
            if steps >= self.config.min_steps && steps.is_multiple_of(self.config.check_interval) {
                if monitor.check().converged || reached_cap {
                    break;
                }
            } else if reached_cap {
                break;
            }
        }
        self.walk_lengths.push(steps);
        Ok(SampleRecord {
            node: current,
            query_cost: self.osn.query_cost(),
            attempts: 1,
        })
    }

    fn target(&self) -> TargetDistribution {
        self.kind.target()
    }

    fn name(&self) -> String {
        self.kind.name().to_string()
    }
}

/// "One long run": burn in once, then emit every visited node as a sample.
pub struct OneLongRunSampler<N: SocialNetwork> {
    osn: N,
    kind: RandomWalkKind,
    current: NodeId,
    config: BurnInConfig,
    rng: StdRng,
    burned_in: bool,
    /// Steps spent in the initial burn-in (for diagnostics).
    burn_in_steps: usize,
}

impl<N: SocialNetwork> OneLongRunSampler<N> {
    /// Creates a sampler starting from `osn.seed_node()`.
    pub fn new(osn: N, kind: RandomWalkKind, config: BurnInConfig, seed: u64) -> Self {
        let current = osn.seed_node();
        OneLongRunSampler {
            osn,
            kind,
            current,
            config,
            rng: StdRng::seed_from_u64(seed),
            burned_in: false,
            burn_in_steps: 0,
        }
    }

    /// Steps spent in the initial burn-in (0 until the first draw).
    pub fn burn_in_steps(&self) -> usize {
        self.burn_in_steps
    }

    /// The wrapped access layer.
    pub fn network(&self) -> &N {
        &self.osn
    }

    fn burn_in(&mut self) -> Result<()> {
        let mut monitor = GewekeMonitor::new(self.config.geweke_threshold)
            .with_min_samples(self.config.min_steps.max(4));
        let start_degree = self.osn.degree(self.current)? as f64;
        monitor.observe(start_degree);
        let mut steps = 0usize;
        loop {
            self.current = walker::step(&self.osn, self.kind, self.current, &mut self.rng)?;
            steps += 1;
            let degree = self.osn.degree(self.current)? as f64;
            monitor.observe(degree);
            let reached_cap = steps >= self.config.max_steps;
            if steps >= self.config.min_steps && steps.is_multiple_of(self.config.check_interval) {
                if monitor.check().converged || reached_cap {
                    break;
                }
            } else if reached_cap {
                break;
            }
        }
        self.burn_in_steps = steps;
        self.burned_in = true;
        Ok(())
    }
}

impl<N: SocialNetwork> Sampler for OneLongRunSampler<N> {
    fn draw(&mut self) -> Result<SampleRecord> {
        if !self.burned_in {
            self.burn_in()?;
            // The node reached at the end of burn-in is the first sample.
            return Ok(SampleRecord {
                node: self.current,
                query_cost: self.osn.query_cost(),
                attempts: 1,
            });
        }
        self.current = walker::step(&self.osn, self.kind, self.current, &mut self.rng)?;
        Ok(SampleRecord {
            node: self.current,
            query_cost: self.osn.query_cost(),
            attempts: 1,
        })
    }

    fn target(&self) -> TargetDistribution {
        self.kind.target()
    }

    fn name(&self) -> String {
        format!("{}-one-long-run", self.kind.name())
    }
}

/// Effective sample size of a correlated chain of attribute values
/// (Equation 25): `M = h / (1 + 2 Σ_k ρ_k)` with the autocorrelation sum
/// truncated at the first non-positive estimate (the standard
/// initial-positive-sequence rule, which keeps the estimate stable).
pub fn effective_sample_size(values: &[f64]) -> f64 {
    let h = values.len();
    if h < 2 {
        return h as f64;
    }
    let mean = values.iter().sum::<f64>() / h as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / h as f64;
    if var <= f64::EPSILON {
        // A constant chain carries a single piece of information no matter
        // how long it is, but by convention report the full length (all
        // "samples" agree exactly).
        return h as f64;
    }
    let mut rho_sum = 0.0;
    for lag in 1..h {
        let mut cov = 0.0;
        for i in 0..(h - lag) {
            cov += (values[i] - mean) * (values[i + lag] - mean);
        }
        cov /= h as f64;
        let rho = cov / var;
        if rho <= 0.0 {
            break;
        }
        rho_sum += rho;
    }
    (h as f64 / (1.0 + 2.0 * rho_sum)).clamp(1.0, h as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::collect_samples;
    use wnw_access::{QueryBudget, SimulatedOsn};
    use wnw_graph::generators::random::barabasi_albert;

    fn small_osn(seed: u64) -> SimulatedOsn {
        SimulatedOsn::new(barabasi_albert(300, 3, seed).unwrap())
    }

    #[test]
    fn many_short_runs_produces_valid_samples() {
        let osn = small_osn(1);
        let mut sampler = ManyShortRunsSampler::new(
            osn.clone(),
            RandomWalkKind::Simple,
            BurnInConfig::default(),
            7,
        );
        let run = collect_samples(&mut sampler, 5).unwrap();
        assert_eq!(run.len(), 5);
        assert_eq!(sampler.walk_lengths().len(), 5);
        assert!(sampler.walk_lengths().iter().all(|&l| l >= 100));
        // Query cost is monotone across samples.
        for w in run.samples.windows(2) {
            assert!(w[1].query_cost >= w[0].query_cost);
        }
        assert!(run
            .samples
            .iter()
            .all(|s| osn.ground_truth().contains(s.node)));
        assert_eq!(sampler.name(), "SRW");
        assert_eq!(sampler.target(), TargetDistribution::DegreeProportional);
    }

    #[test]
    fn mhrw_sampler_targets_uniform() {
        let osn = small_osn(2);
        let mut sampler = ManyShortRunsSampler::new(
            osn,
            RandomWalkKind::MetropolisHastings,
            BurnInConfig {
                max_steps: 500,
                ..Default::default()
            },
            3,
        );
        let run = collect_samples(&mut sampler, 3).unwrap();
        assert_eq!(run.len(), 3);
        assert_eq!(sampler.target(), TargetDistribution::Uniform);
        assert_eq!(sampler.name(), "MHRW");
    }

    #[test]
    fn budget_stops_many_short_runs_cleanly() {
        let graph = barabasi_albert(300, 3, 3).unwrap();
        let osn = SimulatedOsn::builder(graph).budget(QueryBudget(60)).build();
        let mut sampler =
            ManyShortRunsSampler::new(osn, RandomWalkKind::Simple, BurnInConfig::default(), 5);
        let run = collect_samples(&mut sampler, 100).unwrap();
        assert!(run.budget_exhausted);
        assert!(run.final_query_cost() <= 60);
    }

    #[test]
    fn one_long_run_is_cheaper_per_sample_than_many_short_runs() {
        let graph = barabasi_albert(300, 3, 4).unwrap();
        let count = 20;

        let osn_short = SimulatedOsn::new(graph.clone());
        let mut short = ManyShortRunsSampler::new(
            osn_short.clone(),
            RandomWalkKind::Simple,
            BurnInConfig::default(),
            9,
        );
        collect_samples(&mut short, count).unwrap();
        let short_cost = osn_short.query_cost();

        let osn_long = SimulatedOsn::new(graph);
        let mut long = OneLongRunSampler::new(
            osn_long.clone(),
            RandomWalkKind::Simple,
            BurnInConfig::default(),
            9,
        );
        let run = collect_samples(&mut long, count).unwrap();
        let long_cost = osn_long.query_cost();

        assert_eq!(run.len(), count);
        assert!(long.burn_in_steps() > 0);
        assert!(
            long_cost < short_cost,
            "one long run should amortise burn-in: {long_cost} vs {short_cost}"
        );
        assert!(long.name().contains("one-long-run"));
    }

    #[test]
    fn effective_sample_size_behaviour() {
        // Independent-ish alternating values: ESS close to the length.
        let independent: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(effective_sample_size(&independent) > 150.0);

        // Strongly correlated blocks: ESS much smaller than the length.
        let mut correlated = Vec::new();
        for block in 0..10 {
            for _ in 0..20 {
                correlated.push(block as f64);
            }
        }
        let ess = effective_sample_size(&correlated);
        assert!(ess < 50.0, "ess {ess}");

        // Degenerate inputs.
        assert_eq!(effective_sample_size(&[]), 0.0);
        assert_eq!(effective_sample_size(&[1.0]), 1.0);
        assert_eq!(effective_sample_size(&[2.0; 50]), 50.0);
    }
}
