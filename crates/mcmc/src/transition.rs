//! Transition designs (Definitions 1 and 2 of the paper).
//!
//! A random walk is characterised by its transition matrix `T`. The paper
//! evaluates two designs because of their popularity in OSN sampling:
//!
//! * **Simple Random Walk (SRW)** — `T(u, v) = 1/|N(u)|` for `v ∈ N(u)`;
//!   its stationary distribution is proportional to node degree;
//! * **Metropolis–Hastings Random Walk (MHRW)** —
//!   `T(u, v) = 1/|N(u)| · min{1, |N(u)|/|N(v)|}` for `v ∈ N(u)`, with the
//!   leftover mass as a self-loop; its stationary distribution is uniform.
//!
//! WALK-ESTIMATE is transparent to the design: it takes a
//! [`RandomWalkKind`] as input and produces samples following the *same*
//! target distribution, just cheaper.

/// The target (stationary) distribution of a random-walk design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetDistribution {
    /// Every node equally likely (MHRW's stationary distribution).
    Uniform,
    /// Probability proportional to node degree (SRW's stationary
    /// distribution on a connected undirected graph).
    DegreeProportional,
}

impl TargetDistribution {
    /// Unnormalised target weight `q̃(v)` of a node with degree `degree`.
    ///
    /// Rejection sampling and importance-weighted estimators only ever need
    /// ratios of target probabilities, so the normalising constant (which a
    /// third party cannot know without `|V|` or `|E|`) never appears.
    #[inline]
    pub fn weight(&self, degree: usize) -> f64 {
        match self {
            TargetDistribution::Uniform => 1.0,
            TargetDistribution::DegreeProportional => degree as f64,
        }
    }

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            TargetDistribution::Uniform => "uniform",
            TargetDistribution::DegreeProportional => "degree-proportional",
        }
    }
}

/// The random-walk designs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RandomWalkKind {
    /// Simple Random Walk (Definition 1).
    Simple,
    /// Metropolis–Hastings Random Walk targeting the uniform distribution
    /// (Definition 2).
    MetropolisHastings,
}

impl RandomWalkKind {
    /// The design's stationary / target distribution.
    pub fn target(&self) -> TargetDistribution {
        match self {
            RandomWalkKind::Simple => TargetDistribution::DegreeProportional,
            RandomWalkKind::MetropolisHastings => TargetDistribution::Uniform,
        }
    }

    /// Whether the design can stay put (has self-loop probability mass).
    pub fn has_self_loops(&self) -> bool {
        matches!(self, RandomWalkKind::MetropolisHastings)
    }

    /// Short name used in experiment output ("SRW" / "MHRW").
    pub fn name(&self) -> &'static str {
        match self {
            RandomWalkKind::Simple => "SRW",
            RandomWalkKind::MetropolisHastings => "MHRW",
        }
    }

    /// Transition probability `T(u, v)` for a *neighboring* pair `u → v`,
    /// expressed through the two degrees (all either design needs).
    ///
    /// For the self-loop probability of MHRW use
    /// [`self_loop_probability`](Self::self_loop_probability); `T(u, v) = 0`
    /// for non-adjacent distinct nodes by definition.
    #[inline]
    pub fn edge_probability(&self, degree_u: usize, degree_v: usize) -> f64 {
        debug_assert!(
            degree_u > 0,
            "transition from an isolated node is undefined"
        );
        match self {
            RandomWalkKind::Simple => 1.0 / degree_u as f64,
            RandomWalkKind::MetropolisHastings => {
                let du = degree_u as f64;
                let dv = degree_v as f64;
                (1.0 / du) * (du / dv).min(1.0)
            }
        }
    }

    /// Self-loop probability `T(u, u)` given the degrees of `u`'s neighbors.
    ///
    /// `neighbor_degrees` must contain `|N(u)|` entries. For SRW this is
    /// always 0; for MHRW it is `1 − Σ_w T(u, w)`.
    pub fn self_loop_probability(&self, degree_u: usize, neighbor_degrees: &[usize]) -> f64 {
        match self {
            RandomWalkKind::Simple => 0.0,
            RandomWalkKind::MetropolisHastings => {
                let outgoing: f64 = neighbor_degrees
                    .iter()
                    .map(|&dv| self.edge_probability(degree_u, dv))
                    .sum();
                (1.0 - outgoing).max(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srw_probabilities_are_uniform_over_neighbors() {
        let k = RandomWalkKind::Simple;
        assert!((k.edge_probability(4, 100) - 0.25).abs() < 1e-12);
        assert!((k.edge_probability(4, 1) - 0.25).abs() < 1e-12);
        assert_eq!(k.self_loop_probability(4, &[1, 2, 3, 4]), 0.0);
        assert_eq!(k.target(), TargetDistribution::DegreeProportional);
        assert!(!k.has_self_loops());
        assert_eq!(k.name(), "SRW");
    }

    #[test]
    fn mhrw_probabilities_match_definition() {
        let k = RandomWalkKind::MetropolisHastings;
        // d(u) = 4, d(v) = 2: T = 1/4 · min(1, 4/2) = 1/4.
        assert!((k.edge_probability(4, 2) - 0.25).abs() < 1e-12);
        // d(u) = 2, d(v) = 4: T = 1/2 · min(1, 2/4) = 1/4.
        assert!((k.edge_probability(2, 4) - 0.25).abs() < 1e-12);
        assert_eq!(k.target(), TargetDistribution::Uniform);
        assert!(k.has_self_loops());
        assert_eq!(k.name(), "MHRW");
    }

    #[test]
    fn mhrw_rows_sum_to_one() {
        let k = RandomWalkKind::MetropolisHastings;
        let neighbor_degrees = [1usize, 2, 8, 3];
        let du = neighbor_degrees.len();
        let outgoing: f64 = neighbor_degrees
            .iter()
            .map(|&dv| k.edge_probability(du, dv))
            .sum();
        let self_loop = k.self_loop_probability(du, &neighbor_degrees);
        assert!((outgoing + self_loop - 1.0).abs() < 1e-12);
        // There is a neighbor with a higher degree, so the self-loop is
        // strictly positive.
        assert!(self_loop > 0.0);
    }

    #[test]
    fn mhrw_detailed_balance_for_uniform_target() {
        // π uniform => π(u) T(u,v) = π(v) T(v,u) iff T(u,v) = T(v,u).
        let k = RandomWalkKind::MetropolisHastings;
        for (du, dv) in [(3usize, 7usize), (10, 2), (5, 5)] {
            let forward = k.edge_probability(du, dv);
            let backward = k.edge_probability(dv, du);
            assert!((forward - backward).abs() < 1e-12, "({du}, {dv})");
        }
    }

    #[test]
    fn srw_detailed_balance_for_degree_target() {
        // π ∝ degree => d(u)·T(u,v) = d(v)·T(v,u) = 1 for adjacent u, v.
        let k = RandomWalkKind::Simple;
        for (du, dv) in [(3usize, 7usize), (10, 2)] {
            let lhs = du as f64 * k.edge_probability(du, dv);
            let rhs = dv as f64 * k.edge_probability(dv, du);
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn target_weights() {
        assert_eq!(TargetDistribution::Uniform.weight(17), 1.0);
        assert_eq!(TargetDistribution::DegreeProportional.weight(17), 17.0);
        assert_eq!(TargetDistribution::Uniform.name(), "uniform");
        assert_eq!(
            TargetDistribution::DegreeProportional.name(),
            "degree-proportional"
        );
    }
}
