//! Convergence monitors (MCMC convergence diagnostics).
//!
//! Traditional random-walk samplers cannot compute their burn-in length
//! without the full topology, so in practice they "wait" until an on-the-fly
//! diagnostic says the chain looks stationary. The paper (and its baselines)
//! use the **Geweke diagnostic**: split the walk into window A (first 10 %)
//! and window B (last 50 %) and compare the means of a node attribute
//! (typically the degree) observed in the two windows,
//!
//! ```text
//! Z = |θ̄_A − θ̄_B| / sqrt(S_A + S_B)
//! ```
//!
//! declaring convergence when `Z` falls below a threshold (0.1 by default,
//! 0.01 for the stricter runs in Section 2.2.3).

/// Decision returned by a convergence check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GewekeOutcome {
    /// The computed Z score (`f64::INFINITY` when a window is degenerate).
    pub z: f64,
    /// Whether `z <= threshold`.
    pub converged: bool,
}

/// Geweke convergence monitor over a stream of per-step attribute values.
#[derive(Debug, Clone)]
pub struct GewekeMonitor {
    threshold: f64,
    first_window_fraction: f64,
    last_window_fraction: f64,
    min_samples: usize,
    values: Vec<f64>,
}

impl GewekeMonitor {
    /// Creates a monitor with the paper's defaults: windows of 10 % / 50 %,
    /// threshold `Z ≤ 0.1`, and at least 20 observations before a verdict.
    pub fn new(threshold: f64) -> Self {
        GewekeMonitor {
            threshold,
            first_window_fraction: 0.1,
            last_window_fraction: 0.5,
            min_samples: 20,
            values: Vec::new(),
        }
    }

    /// Overrides the window fractions (must be in `(0, 1)` and sum to ≤ 1).
    pub fn with_windows(mut self, first: f64, last: f64) -> Self {
        assert!(
            first > 0.0 && last > 0.0 && first + last <= 1.0,
            "invalid Geweke windows"
        );
        self.first_window_fraction = first;
        self.last_window_fraction = last;
        self
    }

    /// Overrides the minimum number of observations before convergence can
    /// be declared.
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples.max(4);
        self
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of observations recorded so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Records the attribute value observed at the next step of the walk.
    pub fn observe(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Evaluates the diagnostic on everything observed so far.
    pub fn check(&self) -> GewekeOutcome {
        let n = self.values.len();
        if n < self.min_samples {
            return GewekeOutcome {
                z: f64::INFINITY,
                converged: false,
            };
        }
        let first_len = ((n as f64 * self.first_window_fraction).ceil() as usize).max(2);
        let last_len = ((n as f64 * self.last_window_fraction).ceil() as usize).max(2);
        if first_len + last_len > n {
            return GewekeOutcome {
                z: f64::INFINITY,
                converged: false,
            };
        }
        let window_a = &self.values[..first_len];
        let window_b = &self.values[n - last_len..];
        let (mean_a, var_a) = mean_and_variance(window_a);
        let (mean_b, var_b) = mean_and_variance(window_b);
        let denom = (var_a + var_b).sqrt();
        let z = if denom > 0.0 {
            (mean_a - mean_b).abs() / denom
        } else if (mean_a - mean_b).abs() < f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        };
        GewekeOutcome {
            z,
            converged: z <= self.threshold,
        }
    }

    /// `observe` + `check` in one call.
    pub fn observe_and_check(&mut self, value: f64) -> GewekeOutcome {
        self.observe(value);
        self.check()
    }

    /// Clears all observations (the configuration is kept).
    pub fn reset(&mut self) {
        self.values.clear();
    }
}

/// Sample mean and (population) variance of a slice.
fn mean_and_variance(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn needs_minimum_observations() {
        let mut m = GewekeMonitor::new(0.1);
        for _ in 0..5 {
            assert!(!m.observe_and_check(1.0).converged);
        }
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn constant_stream_converges_immediately_after_minimum() {
        let mut m = GewekeMonitor::new(0.1).with_min_samples(10);
        let mut outcome = GewekeOutcome {
            z: f64::INFINITY,
            converged: false,
        };
        for _ in 0..10 {
            outcome = m.observe_and_check(3.0);
        }
        assert!(outcome.converged);
        assert_eq!(outcome.z, 0.0);
    }

    #[test]
    fn stationary_noise_converges_drifting_signal_does_not() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut stationary = GewekeMonitor::new(0.1).with_min_samples(50);
        for _ in 0..3000 {
            stationary.observe(rng.gen_range(0.0..1.0));
        }
        assert!(stationary.check().converged, "z = {}", stationary.check().z);

        let mut drifting = GewekeMonitor::new(0.1).with_min_samples(50);
        for i in 0..400 {
            drifting.observe(i as f64 + rng.gen_range(0.0..0.5));
        }
        assert!(!drifting.check().converged);
    }

    #[test]
    fn tighter_threshold_is_harder_to_satisfy() {
        let mut rng = StdRng::seed_from_u64(12);
        let values: Vec<f64> = (0..200).map(|_| rng.gen_range(0.0..10.0)).collect();
        let mut loose = GewekeMonitor::new(0.5).with_min_samples(50);
        let mut tight = GewekeMonitor::new(1e-6).with_min_samples(50);
        for &v in &values {
            loose.observe(v);
            tight.observe(v);
        }
        assert!(loose.check().converged);
        assert!(!tight.check().converged);
        assert_eq!(loose.check().z, tight.check().z);
    }

    #[test]
    fn reset_clears_history() {
        let mut m = GewekeMonitor::new(0.1);
        m.observe(1.0);
        m.reset();
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid Geweke windows")]
    fn invalid_windows_panic() {
        let _ = GewekeMonitor::new(0.1).with_windows(0.7, 0.7);
    }
}
