//! # wnw-mcmc
//!
//! Random-walk (MCMC) machinery for the reproduction of *"Walk, Not Wait"*
//! (Nazi et al., VLDB 2015): the traditional samplers the paper compares
//! against, and the analytical tools both the paper's theory and our
//! experiments need.
//!
//! * [`transition`] — transition designs: Simple Random Walk (SRW) and
//!   Metropolis–Hastings Random Walk (MHRW) per Definitions 1–2, including
//!   their target (stationary) distributions;
//! * [`walker`] — forward random walks executed against the restricted
//!   [`SocialNetwork`](wnw_access::SocialNetwork) interface;
//! * [`distribution`] — exact ground-truth computations on small graphs:
//!   the transition matrix, distribution evolution `p_t`, stationary
//!   distributions, the relative point-wise distance Δ(t) of Definition 3,
//!   and distribution distances (ℓ∞, total variation, KL);
//! * [`spectral`] — the spectral gap `λ = 1 − s₂` via power iteration with
//!   deflation on the reversible chain's symmetrised kernel;
//! * [`convergence`] — the Geweke convergence monitor used to decide burn-in
//!   on-the-fly (Section 2.2.3);
//! * [`rejection`] — acceptance-rejection sampling with the scaling-factor
//!   policies of Sections 2.3 / 6.3.2;
//! * [`burn_in`] — the baseline samplers: *many short runs* (one sample per
//!   converged walk) and *one long run* (correlated samples after one
//!   burn-in), plus effective sample size (Section 6.1);
//! * [`sampler`] — the `Sampler` trait shared with `wnw-core`, so
//!   WALK-ESTIMATE is a literal swap-in replacement for these baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod burn_in;
pub mod convergence;
pub mod distribution;
pub mod rejection;
pub mod sampler;
pub mod spectral;
pub mod transition;
pub mod walker;

pub use baselines::{BfsSampler, DfsSampler, RandomJumpSampler};
pub use burn_in::{effective_sample_size, ManyShortRunsSampler, OneLongRunSampler};
pub use convergence::{GewekeMonitor, GewekeOutcome};
pub use distribution::TransitionMatrix;
pub use rejection::{acceptance_probability, ScalingFactorPolicy};
pub use sampler::{collect_samples, SampleRecord, Sampler, SamplerRunSummary};
pub use spectral::spectral_gap;
pub use transition::{RandomWalkKind, TargetDistribution};
pub use walker::{random_walk, ForwardWalk};
