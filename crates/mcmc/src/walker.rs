//! Forward random walks over the restricted access interface.
//!
//! A walker only ever calls [`SocialNetwork::neighbors`], so every step is
//! charged exactly the way the paper charges it. MHRW additionally needs the
//! degree of the proposed neighbor to evaluate the acceptance ratio — a real
//! extra query, which is part of why MHRW mixes (and spends) slower than SRW
//! in practice (Section 8 cites the same observation from Gjoka et al.).

use crate::transition::RandomWalkKind;
use rand::seq::SliceRandom;
use rand::Rng;
use wnw_access::{Result, SocialNetwork};
use wnw_graph::NodeId;

/// The trajectory of a forward random walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardWalk {
    /// Visited nodes, `path[0]` being the starting node. A walk of `t` steps
    /// has `t + 1` entries; MHRW self-loops repeat the same node.
    pub path: Vec<NodeId>,
}

impl ForwardWalk {
    /// The node where the walk currently sits.
    pub fn current(&self) -> NodeId {
        *self
            .path
            .last()
            .expect("a walk always contains its starting node")
    }

    /// Number of steps taken (edges traversed or self-loops).
    pub fn steps(&self) -> usize {
        self.path.len() - 1
    }

    /// The node visited at step `t` (`t = 0` is the start).
    pub fn node_at(&self, t: usize) -> Option<NodeId> {
        self.path.get(t).copied()
    }
}

/// Performs one step of the walk from `current`, returning the next node.
///
/// For SRW this is a uniform choice among `N(current)`. For MHRW a uniform
/// proposal is accepted with probability `min(1, |N(u)|/|N(v)|)`, otherwise
/// the walk stays at `current` (the self-loop of Definition 2).
pub fn step<N: SocialNetwork + ?Sized, R: Rng + ?Sized>(
    osn: &N,
    kind: RandomWalkKind,
    current: NodeId,
    rng: &mut R,
) -> Result<NodeId> {
    let neighbors = osn.neighbors(current)?;
    if neighbors.is_empty() {
        // An isolated node can only stay put; callers on connected graphs
        // never hit this.
        return Ok(current);
    }
    let proposal = *neighbors.choose(rng).expect("non-empty neighbor list");
    match kind {
        RandomWalkKind::Simple => Ok(proposal),
        RandomWalkKind::MetropolisHastings => {
            let du = neighbors.len() as f64;
            let dv = osn.degree(proposal)? as f64;
            let accept = (du / dv).min(1.0);
            if rng.gen::<f64>() < accept {
                Ok(proposal)
            } else {
                Ok(current)
            }
        }
    }
}

/// Runs a walk of exactly `steps` steps starting at `start`.
pub fn random_walk<N: SocialNetwork + ?Sized, R: Rng + ?Sized>(
    osn: &N,
    kind: RandomWalkKind,
    start: NodeId,
    steps: usize,
    rng: &mut R,
) -> Result<ForwardWalk> {
    let mut path = Vec::with_capacity(steps + 1);
    path.push(start);
    let mut current = start;
    for _ in 0..steps {
        current = step(osn, kind, current, rng)?;
        path.push(current);
    }
    Ok(ForwardWalk { path })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;
    use wnw_access::SimulatedOsn;
    use wnw_graph::generators::classic::{complete, cycle, star};
    use wnw_graph::generators::random::barabasi_albert;

    #[test]
    fn walk_length_and_adjacency_are_respected() {
        let g = barabasi_albert(100, 3, 1).unwrap();
        let osn = SimulatedOsn::new(g);
        let mut rng = StdRng::seed_from_u64(1);
        let walk = random_walk(&osn, RandomWalkKind::Simple, NodeId(0), 25, &mut rng).unwrap();
        assert_eq!(walk.steps(), 25);
        assert_eq!(walk.path.len(), 26);
        assert_eq!(walk.node_at(0), Some(NodeId(0)));
        // Every consecutive pair must be an edge of the underlying graph.
        let truth = osn.ground_truth();
        for w in walk.path.windows(2) {
            assert!(
                truth.has_edge(w[0], w[1]),
                "non-edge {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn mhrw_may_stay_put_but_never_teleports() {
        let g = star(20); // hub has degree 19, leaves degree 1: many rejections
        let osn = SimulatedOsn::new(g);
        let mut rng = StdRng::seed_from_u64(2);
        let walk = random_walk(
            &osn,
            RandomWalkKind::MetropolisHastings,
            NodeId(0),
            50,
            &mut rng,
        )
        .unwrap();
        let truth = osn.ground_truth();
        let mut saw_self_loop = false;
        for w in walk.path.windows(2) {
            if w[0] == w[1] {
                saw_self_loop = true;
            } else {
                assert!(truth.has_edge(w[0], w[1]));
            }
        }
        // From the hub, a proposal to a leaf is accepted with prob 1/19, so a
        // 50-step MHRW on a star virtually always self-loops at least once.
        assert!(saw_self_loop);
    }

    #[test]
    fn srw_on_complete_graph_visits_uniformly() {
        let n = 10;
        let osn = SimulatedOsn::new(complete(n));
        let mut rng = StdRng::seed_from_u64(3);
        let walk = random_walk(&osn, RandomWalkKind::Simple, NodeId(0), 20_000, &mut rng).unwrap();
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        for &v in &walk.path[1..] {
            *counts.entry(v).or_default() += 1;
        }
        let expected = 20_000.0 / n as f64;
        for v in 0..n as u32 {
            let c = *counts.get(&NodeId(v)).unwrap_or(&0) as f64;
            assert!(
                (c - expected).abs() / expected < 0.15,
                "node {v}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn walk_on_isolated_node_stays_put() {
        use wnw_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.ensure_nodes(3);
        b.add_edge(1u32, 2u32);
        let osn = SimulatedOsn::new(b.build());
        let mut rng = StdRng::seed_from_u64(4);
        let walk = random_walk(&osn, RandomWalkKind::Simple, NodeId(0), 5, &mut rng).unwrap();
        assert!(walk.path.iter().all(|&v| v == NodeId(0)));
    }

    #[test]
    fn query_cost_counts_unique_nodes_only() {
        let osn = SimulatedOsn::new(cycle(6));
        let mut rng = StdRng::seed_from_u64(5);
        random_walk(&osn, RandomWalkKind::Simple, NodeId(0), 100, &mut rng).unwrap();
        // A 100-step walk on a 6-cycle revisits nodes constantly; the charged
        // cost can never exceed the number of distinct nodes.
        assert!(osn.query_cost() <= 6);
    }

    #[test]
    fn mhrw_on_cycle_behaves_like_srw() {
        // All degrees equal => acceptance ratio is always 1, so MHRW never
        // self-loops on a cycle.
        let osn = SimulatedOsn::new(cycle(8));
        let mut rng = StdRng::seed_from_u64(6);
        let walk = random_walk(
            &osn,
            RandomWalkKind::MetropolisHastings,
            NodeId(0),
            64,
            &mut rng,
        )
        .unwrap();
        for w in walk.path.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }
}
