//! Spectral gap of a random-walk transition matrix.
//!
//! The paper's Theorem 1 expresses both the burn-in cost of a traditional
//! walk and the optimal WALK length through the spectral gap `λ = 1 − s₂`,
//! where `s₂` is the second largest eigenvalue of `T` (Section 2.2.3).
//!
//! Both SRW and MHRW are *reversible*: SRW w.r.t. the degree distribution,
//! MHRW w.r.t. the uniform distribution. A reversible `T` with stationary
//! distribution `π` is similar to the symmetric matrix
//! `S = D_π^{1/2} · T · D_π^{-1/2}`, whose spectrum equals `T`'s and whose
//! leading eigenvector is `√π`. We therefore run power iteration on `S`
//! with deflation against `√π` to obtain `s₂` without any external linear
//! algebra dependency.

use crate::distribution::TransitionMatrix;
use crate::transition::RandomWalkKind;
use wnw_graph::Graph;

/// Result of a spectral-gap computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralInfo {
    /// Second largest eigenvalue `s₂` of the transition matrix.
    pub second_eigenvalue: f64,
    /// Spectral gap `λ = 1 − s₂`.
    pub gap: f64,
    /// Number of power iterations performed.
    pub iterations: usize,
}

/// Computes the spectral gap `λ = 1 − s₂` of the walk `kind` on `graph`.
///
/// `tolerance` controls the power-iteration convergence test on the Rayleigh
/// quotient; 1e-9 is plenty for the case-study figures. Graphs with fewer
/// than 2 nodes return a gap of 1.0 by convention.
pub fn spectral_gap(graph: &Graph, kind: RandomWalkKind, tolerance: f64) -> SpectralInfo {
    spectral_gap_with_iterations(graph, kind, tolerance, 100_000)
}

/// Like [`spectral_gap`] with an explicit iteration cap.
pub fn spectral_gap_with_iterations(
    graph: &Graph,
    kind: RandomWalkKind,
    tolerance: f64,
    max_iterations: usize,
) -> SpectralInfo {
    let n = graph.node_count();
    if n < 2 {
        return SpectralInfo {
            second_eigenvalue: 0.0,
            gap: 1.0,
            iterations: 0,
        };
    }
    let t = TransitionMatrix::new(graph, kind);
    let pi = TransitionMatrix::stationary_distribution(graph, kind);
    let sqrt_pi: Vec<f64> = pi.iter().map(|&x| x.sqrt()).collect();

    // x: current iterate, kept orthogonal to sqrt_pi (the leading
    // eigenvector of S) so power iteration converges to the second one.
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            // A deterministic, non-degenerate starting vector.
            ((i as f64 * 0.754_877_666 + 0.1).sin() + 1.5) / (i as f64 + 2.0)
        })
        .collect();
    orthogonalize(&mut x, &sqrt_pi);
    normalize(&mut x);

    // Power iteration on the *shifted* operator (S + I)/2, whose spectrum is
    // a monotone map of S's into [0, 1]. This makes the iteration converge to
    // the second *largest eigenvalue* of S (the paper's s₂) rather than the
    // second largest modulus — the two differ on near-bipartite graphs such
    // as cycles, where the most negative eigenvalue has the larger modulus.
    let mut shifted_eigenvalue = 0.0;
    let mut iterations = 0;
    for it in 0..max_iterations {
        iterations = it + 1;
        let sx = apply_symmetrized(&t, &sqrt_pi, &x);
        let mut y: Vec<f64> = sx.iter().zip(&x).map(|(s, xi)| 0.5 * (s + xi)).collect();
        orthogonalize(&mut y, &sqrt_pi);
        let norm = vec_norm(&y);
        if norm < 1e-300 {
            // x was (numerically) in the span of sqrt_pi: every remaining
            // direction has eigenvalue ~ -1 under S; treat s₂ as 0 for the
            // degenerate graphs where this happens.
            shifted_eigenvalue = 0.5;
            break;
        }
        for v in &mut y {
            *v /= norm;
        }
        // Rayleigh quotient (y is unit length) on the shifted operator.
        let sy = apply_symmetrized(&t, &sqrt_pi, &y);
        let shifted_sy: Vec<f64> = sy.iter().zip(&y).map(|(s, yi)| 0.5 * (s + yi)).collect();
        let new_eigenvalue: f64 = y.iter().zip(&shifted_sy).map(|(a, b)| a * b).sum();
        let converged = (new_eigenvalue - shifted_eigenvalue).abs() < tolerance;
        shifted_eigenvalue = new_eigenvalue;
        x = y;
        if converged && it > 3 {
            break;
        }
    }
    let eigenvalue = 2.0 * shifted_eigenvalue - 1.0;
    SpectralInfo {
        second_eigenvalue: eigenvalue,
        gap: (1.0 - eigenvalue).clamp(0.0, 1.0),
        iterations,
    }
}

/// `S·x` where `S = D_π^{1/2} T D_π^{-1/2}`, computed without forming `S`.
fn apply_symmetrized(t: &TransitionMatrix, sqrt_pi: &[f64], x: &[f64]) -> Vec<f64> {
    let n = x.len();
    // w = D_π^{-1/2} x
    let w: Vec<f64> = x
        .iter()
        .zip(sqrt_pi)
        .map(|(&xi, &s)| if s > 0.0 { xi / s } else { 0.0 })
        .collect();
    // z = Tᵀ? Careful: (S x)_v = Σ_u sqrt_pi[v]/sqrt_pi[u] · T(v, u) ... Use
    // S = D^{1/2} T D^{-1/2}: (S x)_u = sqrt_pi[u] · Σ_v T(u, v) · w[v].
    let mut out = vec![0.0; n];
    for u in 0..n {
        let mut acc = t.self_loop(wnw_graph::NodeId(u as u32)) * w[u];
        for &(v, p) in t.row(wnw_graph::NodeId(u as u32)) {
            acc += p * w[v.index()];
        }
        out[u] = sqrt_pi[u] * acc;
    }
    out
}

fn orthogonalize(x: &mut [f64], against: &[f64]) {
    let dot: f64 = x.iter().zip(against).map(|(a, b)| a * b).sum();
    let norm_sq: f64 = against.iter().map(|a| a * a).sum();
    if norm_sq > 0.0 {
        let coeff = dot / norm_sq;
        for (xi, ai) in x.iter_mut().zip(against) {
            *xi -= coeff * ai;
        }
    }
}

fn vec_norm(x: &[f64]) -> f64 {
    x.iter().map(|a| a * a).sum::<f64>().sqrt()
}

fn normalize(x: &mut [f64]) {
    let n = vec_norm(x);
    if n > 0.0 {
        for v in x.iter_mut() {
            *v /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_graph::generators::classic::{complete, cycle, hypercube};
    use wnw_graph::generators::random::barabasi_albert;

    #[test]
    fn complete_graph_srw_eigenvalue_is_known() {
        // K_n under SRW: eigenvalues are 1 and -1/(n-1); the second largest
        // is -1/(n-1), so the gap is close to 1 (power iteration converges to
        // the largest *positive* remaining eigenvalue; with all remaining
        // eigenvalues negative the Rayleigh quotient approaches -1/(n-1)).
        let g = complete(10);
        let info = spectral_gap(&g, RandomWalkKind::Simple, 1e-10);
        assert!(info.second_eigenvalue <= 0.0 + 1e-6, "{info:?}");
        assert!(info.gap >= 0.99, "{info:?}");
    }

    #[test]
    fn cycle_srw_eigenvalue_matches_cosine_formula() {
        // C_n under SRW has eigenvalues cos(2πk/n); the second largest is
        // cos(2π/n).
        let n = 20;
        let g = cycle(n);
        let info = spectral_gap(&g, RandomWalkKind::Simple, 1e-12);
        let expected = (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!(
            (info.second_eigenvalue - expected).abs() < 1e-6,
            "{info:?} vs {expected}"
        );
    }

    #[test]
    fn hypercube_srw_eigenvalue_matches_formula() {
        // Q_k under SRW has eigenvalues 1 - 2i/k; the second largest is
        // 1 - 2/k.
        let k = 4;
        let g = hypercube(k);
        let info = spectral_gap(&g, RandomWalkKind::Simple, 1e-12);
        let expected = 1.0 - 2.0 / k as f64;
        assert!(
            (info.second_eigenvalue - expected).abs() < 1e-6,
            "{info:?} vs {expected}"
        );
    }

    #[test]
    fn gap_is_in_unit_interval_for_real_graphs() {
        let g = barabasi_albert(200, 3, 7).unwrap();
        for kind in [RandomWalkKind::Simple, RandomWalkKind::MetropolisHastings] {
            let info = spectral_gap(&g, kind, 1e-9);
            assert!(info.gap > 0.0 && info.gap <= 1.0, "{kind:?}: {info:?}");
            assert!(info.second_eigenvalue < 1.0);
        }
    }

    #[test]
    fn larger_cycles_have_smaller_gaps() {
        let small = spectral_gap(&cycle(10), RandomWalkKind::Simple, 1e-10).gap;
        let large = spectral_gap(&cycle(40), RandomWalkKind::Simple, 1e-10).gap;
        assert!(
            large < small,
            "gap should shrink with diameter: {large} vs {small}"
        );
    }

    #[test]
    fn degenerate_graphs() {
        let g = complete(1);
        let info = spectral_gap(&g, RandomWalkKind::Simple, 1e-9);
        assert_eq!(info.gap, 1.0);
        let g0 = wnw_graph::GraphBuilder::new().build();
        assert_eq!(spectral_gap(&g0, RandomWalkKind::Simple, 1e-9).gap, 1.0);
    }
}
