//! The sampler abstraction shared by the baselines and WALK-ESTIMATE.
//!
//! Every sampler in this workspace — the traditional burn-in samplers in
//! [`burn_in`](crate::burn_in) and the WALK-ESTIMATE family in `wnw-core` —
//! implements [`Sampler`], so the experiment harness can compare them on the
//! paper's terms: *what sample quality do you get for a given query cost?*

use crate::transition::TargetDistribution;
use wnw_access::{AccessError, Result};
use wnw_graph::NodeId;

/// One sample produced by a sampler, annotated with the cumulative query
/// cost at the moment it was produced (the x-axis of Figures 6–8 and 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRecord {
    /// The sampled node.
    pub node: NodeId,
    /// Cumulative unique-node query cost of the access layer when this
    /// sample was emitted.
    pub query_cost: u64,
    /// How many candidate nodes were examined (walks completed) to produce
    /// this sample; 1 for samplers without rejection.
    pub attempts: u32,
}

/// A node sampler over a restricted-access social network.
///
/// The trait is deliberately object-safe: the experiment harness and the
/// concurrent engine drive heterogeneous samplers through `Box<dyn Sampler>`
/// built inside each worker thread (no `Send` bound is required because a
/// sampler never migrates between threads — only its *inputs*, the shared
/// network handle and configuration, cross thread boundaries).
pub trait Sampler {
    /// Draws the next sample. Errors are access-layer errors; in particular
    /// [`AccessError::BudgetExhausted`] signals that the query budget ran out
    /// mid-draw and is treated by harnesses as a normal stop condition.
    fn draw(&mut self) -> Result<SampleRecord>;

    /// The distribution the emitted samples follow (or approach).
    fn target(&self) -> TargetDistribution;

    /// Short name used in experiment output (e.g. "SRW", "MHRW", "WE(SRW)").
    fn name(&self) -> String;

    /// Publishes any state this sampler batches for a cooperating pool (e.g.
    /// WALK-ESTIMATE's pending forward-walk history). The concurrent engine
    /// calls this at its deterministic round barriers; samplers without
    /// shared state — all the traditional baselines — keep the default no-op.
    fn flush_shared_state(&mut self) {}
}

/// Summary of a sampling run produced by [`collect_samples`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SamplerRunSummary {
    /// Samples in the order they were produced.
    pub samples: Vec<SampleRecord>,
    /// Whether the run stopped because the query budget was exhausted.
    pub budget_exhausted: bool,
}

impl SamplerRunSummary {
    /// The sampled node ids only.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.samples.iter().map(|s| s.node).collect()
    }

    /// Query cost recorded with the last sample (0 if no samples were drawn).
    pub fn final_query_cost(&self) -> u64 {
        self.samples.last().map_or(0, |s| s.query_cost)
    }

    /// Number of samples drawn.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were drawn.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Draws up to `max_samples` samples, stopping early (without error) if the
/// access layer's query budget runs out.
pub fn collect_samples<S: Sampler + ?Sized>(
    sampler: &mut S,
    max_samples: usize,
) -> Result<SamplerRunSummary> {
    let mut summary = SamplerRunSummary::default();
    for _ in 0..max_samples {
        match sampler.draw() {
            Ok(record) => summary.samples.push(record),
            Err(AccessError::BudgetExhausted { .. }) => {
                summary.budget_exhausted = true;
                break;
            }
            Err(other) => return Err(other),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake sampler for exercising the helpers.
    struct FakeSampler {
        emitted: u32,
        fail_after: u32,
    }

    impl Sampler for FakeSampler {
        fn draw(&mut self) -> Result<SampleRecord> {
            if self.emitted >= self.fail_after {
                return Err(AccessError::BudgetExhausted { budget: 10 });
            }
            self.emitted += 1;
            Ok(SampleRecord {
                node: NodeId(self.emitted),
                query_cost: u64::from(self.emitted) * 3,
                attempts: 1,
            })
        }
        fn target(&self) -> TargetDistribution {
            TargetDistribution::Uniform
        }
        fn name(&self) -> String {
            "fake".into()
        }
    }

    #[test]
    fn collect_until_count() {
        let mut s = FakeSampler {
            emitted: 0,
            fail_after: 100,
        };
        let run = collect_samples(&mut s, 5).unwrap();
        assert_eq!(run.len(), 5);
        assert!(!run.budget_exhausted);
        assert_eq!(run.final_query_cost(), 15);
        assert_eq!(
            run.nodes(),
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4), NodeId(5)]
        );
    }

    #[test]
    fn collect_stops_gracefully_on_budget() {
        let mut s = FakeSampler {
            emitted: 0,
            fail_after: 3,
        };
        let run = collect_samples(&mut s, 10).unwrap();
        assert_eq!(run.len(), 3);
        assert!(run.budget_exhausted);
    }

    #[test]
    fn other_errors_propagate() {
        struct Broken;
        impl Sampler for Broken {
            fn draw(&mut self) -> Result<SampleRecord> {
                Err(AccessError::UnknownNode(NodeId(7)))
            }
            fn target(&self) -> TargetDistribution {
                TargetDistribution::Uniform
            }
            fn name(&self) -> String {
                "broken".into()
            }
        }
        assert!(collect_samples(&mut Broken, 3).is_err());
    }

    #[test]
    fn empty_summary_defaults() {
        let s = SamplerRunSummary::default();
        assert!(s.is_empty());
        assert_eq!(s.final_query_cost(), 0);
    }
}
