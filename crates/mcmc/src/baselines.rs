//! Non-MCMC baseline samplers from the related work (Section 8).
//!
//! The OSN-sampling literature the paper builds on compares random walks
//! against simpler crawl-based strategies. They are implemented here both as
//! comparison points for the benchmark harness and as additional exercise of
//! the restricted access layer:
//!
//! * [`BfsSampler`] / [`DfsSampler`] — breadth/depth-first crawling from the
//!   seed node, emitting nodes in visit order. Known to be biased toward the
//!   seed's neighborhood (BFS) or long chains (DFS); Leskovec & Faloutsos and
//!   Gjoka et al. document their inferiority to random walks, which is why
//!   the paper does not even include them — they are here so the claim can be
//!   verified.
//! * [`RandomJumpSampler`] — the "uniform node id generator" strategy used by
//!   hybrid samplers such as Albatross sampling: repeatedly guess ids from
//!   the id space and keep the hits. Its cost per sample is driven by the
//!   *hit rate* (valid ids / id space), which is exactly why the paper does
//!   not assume such a generator exists.

use crate::sampler::{SampleRecord, Sampler};
use crate::transition::TargetDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashSet, VecDeque};
use wnw_access::{AccessError, Result, SocialNetwork};
use wnw_graph::NodeId;

/// Breadth-first crawler: emits nodes in BFS order from the seed.
pub struct BfsSampler<N: SocialNetwork> {
    osn: N,
    queue: VecDeque<NodeId>,
    visited: HashSet<NodeId>,
}

impl<N: SocialNetwork> BfsSampler<N> {
    /// Starts a BFS crawl from `osn.seed_node()`.
    pub fn new(osn: N) -> Self {
        let seed = osn.seed_node();
        let mut visited = HashSet::new();
        visited.insert(seed);
        BfsSampler {
            osn,
            queue: VecDeque::from([seed]),
            visited,
        }
    }
}

impl<N: SocialNetwork> Sampler for BfsSampler<N> {
    fn draw(&mut self) -> Result<SampleRecord> {
        let Some(next) = self.queue.pop_front() else {
            // The reachable component is exhausted; BFS cannot produce more
            // distinct nodes, which shows up as a budget-style stop.
            return Err(AccessError::BudgetExhausted {
                budget: self.visited.len() as u64,
            });
        };
        for neighbor in self.osn.neighbors(next)? {
            if self.visited.insert(neighbor) {
                self.queue.push_back(neighbor);
            }
        }
        Ok(SampleRecord {
            node: next,
            query_cost: self.osn.query_cost(),
            attempts: 1,
        })
    }

    fn target(&self) -> TargetDistribution {
        // BFS has no principled target distribution; reporting uniform makes
        // the (biased) plain mean the estimator applied to it, matching how
        // the literature evaluates it.
        TargetDistribution::Uniform
    }

    fn name(&self) -> String {
        "BFS".to_string()
    }
}

/// Depth-first crawler: emits nodes in DFS order from the seed.
pub struct DfsSampler<N: SocialNetwork> {
    osn: N,
    stack: Vec<NodeId>,
    visited: HashSet<NodeId>,
}

impl<N: SocialNetwork> DfsSampler<N> {
    /// Starts a DFS crawl from `osn.seed_node()`.
    pub fn new(osn: N) -> Self {
        let seed = osn.seed_node();
        let mut visited = HashSet::new();
        visited.insert(seed);
        DfsSampler {
            osn,
            stack: vec![seed],
            visited,
        }
    }
}

impl<N: SocialNetwork> Sampler for DfsSampler<N> {
    fn draw(&mut self) -> Result<SampleRecord> {
        let Some(next) = self.stack.pop() else {
            return Err(AccessError::BudgetExhausted {
                budget: self.visited.len() as u64,
            });
        };
        for neighbor in self.osn.neighbors(next)? {
            if self.visited.insert(neighbor) {
                self.stack.push(neighbor);
            }
        }
        Ok(SampleRecord {
            node: next,
            query_cost: self.osn.query_cost(),
            attempts: 1,
        })
    }

    fn target(&self) -> TargetDistribution {
        TargetDistribution::Uniform
    }

    fn name(&self) -> String {
        "DFS".to_string()
    }
}

/// Uniform random-id guessing ("random jump" substrate): draws ids uniformly
/// from an id space of size `id_space`, counting every guess as one API call
/// and every *miss* as wasted budget.
///
/// `hit_rate = node_count / id_space`. Real services have hit rates far below
/// 1 (sparse 64-bit id spaces), which is what makes this strategy expensive
/// and motivates walk-based sampling.
pub struct RandomJumpSampler<N: SocialNetwork> {
    osn: N,
    node_count: usize,
    id_space: u64,
    rng: StdRng,
    /// Total guesses made (hits + misses).
    guesses: u64,
}

impl<N: SocialNetwork> RandomJumpSampler<N> {
    /// Creates a sampler over an id space of `id_space` ids, of which the
    /// first `node_count` (the real users) are hits.
    ///
    /// # Panics
    /// Panics if the access layer does not expose a node count hint (the id
    /// generator abstraction needs to know which guesses are hits).
    pub fn new(osn: N, id_space: u64, seed: u64) -> Self {
        let node_count = osn
            .node_count_hint()
            .expect("RandomJumpSampler needs a node count hint");
        assert!(
            id_space >= node_count as u64,
            "id space must cover all nodes"
        );
        RandomJumpSampler {
            osn,
            node_count,
            id_space,
            rng: StdRng::seed_from_u64(seed),
            guesses: 0,
        }
    }

    /// Total id guesses made so far (hits and misses).
    pub fn guesses(&self) -> u64 {
        self.guesses
    }

    /// The configured hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.node_count as f64 / self.id_space as f64
    }
}

impl<N: SocialNetwork> Sampler for RandomJumpSampler<N> {
    fn draw(&mut self) -> Result<SampleRecord> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            self.guesses += 1;
            let guess = self.rng.gen_range(0..self.id_space);
            if guess < self.node_count as u64 {
                let node = NodeId(guess as u32);
                // Touch the profile so the query cost reflects the fetch of
                // the sampled user (parity with the walk-based samplers).
                let _ = self.osn.neighbors(node)?;
                return Ok(SampleRecord {
                    node,
                    query_cost: self.osn.query_cost(),
                    attempts,
                });
            }
        }
    }

    fn target(&self) -> TargetDistribution {
        TargetDistribution::Uniform
    }

    fn name(&self) -> String {
        "random-jump".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::collect_samples;
    use wnw_access::SimulatedOsn;
    use wnw_graph::generators::classic::path;
    use wnw_graph::generators::random::barabasi_albert;

    #[test]
    fn bfs_visits_every_node_exactly_once() {
        let graph = barabasi_albert(80, 3, 1).unwrap();
        let n = graph.node_count();
        let osn = SimulatedOsn::new(graph);
        let mut bfs = BfsSampler::new(osn);
        let run = collect_samples(&mut bfs, n + 10).unwrap();
        assert_eq!(run.len(), n, "BFS covers the connected graph then stops");
        let unique: HashSet<NodeId> = run.nodes().into_iter().collect();
        assert_eq!(unique.len(), n);
        assert!(run.budget_exhausted);
        assert_eq!(bfs.name(), "BFS");
    }

    #[test]
    fn bfs_emits_nodes_in_distance_order() {
        let osn = SimulatedOsn::new(path(6));
        let mut bfs = BfsSampler::new(osn);
        let run = collect_samples(&mut bfs, 6).unwrap();
        let nodes: Vec<u32> = run.nodes().iter().map(|n| n.0).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn dfs_visits_every_node_and_differs_from_bfs_on_trees() {
        let graph = wnw_graph::generators::classic::balanced_binary_tree(3);
        let n = graph.node_count();
        let osn_b = SimulatedOsn::new(graph.clone());
        let osn_d = SimulatedOsn::new(graph);
        let bfs_nodes = collect_samples(&mut BfsSampler::new(osn_b), n)
            .unwrap()
            .nodes();
        let dfs_nodes = collect_samples(&mut DfsSampler::new(osn_d), n)
            .unwrap()
            .nodes();
        assert_eq!(bfs_nodes.len(), n);
        assert_eq!(dfs_nodes.len(), n);
        assert_ne!(bfs_nodes, dfs_nodes, "orders should differ on a deep tree");
    }

    #[test]
    fn bfs_samples_are_degree_biased_toward_the_hub_neighborhood() {
        // On a BA graph, the first few BFS samples have far higher average
        // degree than the population — the classic BFS bias the related work
        // documents.
        let graph = barabasi_albert(500, 3, 5).unwrap();
        let avg = graph.average_degree();
        let osn = SimulatedOsn::new(graph.clone());
        let mut bfs = BfsSampler::new(osn);
        let run = collect_samples(&mut bfs, 30).unwrap();
        let sample_avg: f64 = run
            .nodes()
            .iter()
            .map(|&v| graph.degree(v) as f64)
            .sum::<f64>()
            / run.len() as f64;
        assert!(
            sample_avg > 1.5 * avg,
            "BFS sample avg degree {sample_avg} vs population {avg}"
        );
    }

    #[test]
    fn random_jump_is_uniform_but_wastes_guesses() {
        let graph = barabasi_albert(200, 3, 7).unwrap();
        let osn = SimulatedOsn::new(graph);
        // Hit rate 1/50: most guesses miss.
        let mut sampler = RandomJumpSampler::new(osn, 200 * 50, 11);
        assert!((sampler.hit_rate() - 0.02).abs() < 1e-12);
        let run = collect_samples(&mut sampler, 20).unwrap();
        assert_eq!(run.len(), 20);
        assert!(
            sampler.guesses() > 200,
            "expected many wasted guesses, got {}",
            sampler.guesses()
        );
        assert!(run.samples.iter().all(|s| s.attempts >= 1));
        assert_eq!(sampler.name(), "random-jump");
        assert_eq!(sampler.target(), TargetDistribution::Uniform);
    }

    #[test]
    #[should_panic(expected = "id space must cover all nodes")]
    fn random_jump_rejects_too_small_id_space() {
        let osn = SimulatedOsn::new(path(10));
        let _ = RandomJumpSampler::new(osn, 5, 1);
    }
}
