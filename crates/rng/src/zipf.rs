//! A seeded, std-only Zipf distribution over ranks `1..=n`.
//!
//! `P(rank = k) ∝ k^{-s}`: the discrete power law that models hot-key skew
//! in real request streams (a handful of celebrity nodes receive most of
//! the traffic). Sampling is inverse-CDF over a table precomputed at
//! construction — one uniform draw plus a binary search per sample — so a
//! `Zipf` is cheap to sample from and exactly reproducible for a given
//! `(n, s, seed)` triple, which is what the workload-replay harness's
//! determinism contract rests on.

use crate::{Rng, RngCore};

/// A Zipf(`n`, `s`) distribution over the ranks `1..=n`.
///
/// ```
/// use wnw_rand::rngs::StdRng;
/// use wnw_rand::zipf::Zipf;
/// use wnw_rand::SeedableRng;
///
/// let zipf = Zipf::new(100, 1.1);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[k-1] = P(rank <= k)`, normalized so the last entry is 1.0.
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Builds the distribution over ranks `1..=n` with exponent `s >= 0`.
    /// `s = 0` degenerates to uniform; larger `s` concentrates more mass on
    /// the head.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for entry in &mut cdf {
            *entry /= total;
        }
        // Guard the tail against floating-point shortfall: a uniform draw
        // infinitesimally below 1.0 must still find a rank.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf, s }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The skew exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Exact probability of rank `k` (1-based), `0.0` outside `1..=n`.
    pub fn probability(&self, k: usize) -> f64 {
        if k == 0 || k > self.cdf.len() {
            return 0.0;
        }
        let upper = self.cdf[k - 1];
        let lower = if k == 1 { 0.0 } else { self.cdf[k - 2] };
        upper - lower
    }

    /// Exact probability mass of the head `1..=k` (closed-form from the
    /// normalization table): what fraction of draws land on the `k` hottest
    /// ranks.
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.cdf[k.min(self.cdf.len()) - 1]
    }

    /// Draws one rank in `1..=n` by inverting the CDF on a uniform draw.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // First index whose cumulative mass covers `u`; partition_point
        // returns `n`-at-most because cdf ends at exactly 1.0 > u.
        let idx = self.cdf.partition_point(|&c| c <= u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    /// Closed-form head mass: `H_{k,s} / H_{n,s}`.
    fn expected_head_mass(n: usize, s: f64, k: usize) -> f64 {
        let h = |m: usize| (1..=m).map(|i| (i as f64).powf(-s)).sum::<f64>();
        h(k) / h(n)
    }

    #[test]
    fn head_mass_matches_closed_form_for_both_exponents() {
        // The two exponents the load scenarios use; pin the precomputed
        // table against an independent closed-form evaluation.
        for s in [0.8, 1.1] {
            let n = 1_000;
            let zipf = Zipf::new(n, s);
            for k in [1, 10, 100] {
                let expected = expected_head_mass(n, s, k);
                let got = zipf.head_mass(k);
                assert!(
                    (got - expected).abs() < 1e-12,
                    "head_mass({k}) at s={s}: {got} vs {expected}"
                );
            }
            // And empirically: draws must land in the head at the predicted
            // frequency (binomial std dev at 40k draws is well under 0.01).
            let mut rng = StdRng::seed_from_u64(42);
            let draws = 40_000;
            let in_top_10 =
                (0..draws).filter(|_| zipf.sample(&mut rng) <= 10).count() as f64 / draws as f64;
            let expected = expected_head_mass(n, s, 10);
            assert!(
                (in_top_10 - expected).abs() < 0.02,
                "empirical top-10 mass at s={s}: {in_top_10} vs {expected}"
            );
        }
    }

    #[test]
    fn s_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((zipf.probability(k) - 0.25).abs() < 1e-12);
        }
        assert_eq!(zipf.probability(0), 0.0);
        assert_eq!(zipf.probability(5), 0.0);
    }

    #[test]
    fn samples_cover_the_support_and_are_seeded() {
        let zipf = Zipf::new(8, 1.1);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let draws_a: Vec<u64> = (0..2_000).map(|_| zipf.sample(&mut a)).collect();
        let draws_b: Vec<u64> = (0..2_000).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same sequence");
        for rank in 1..=8u64 {
            assert!(draws_a.contains(&rank), "rank {rank} never drawn");
        }
        assert!(draws_a.iter().all(|&r| (1..=8).contains(&r)));
        // Monotone head: rank 1 must be the most frequent.
        let count = |r| draws_a.iter().filter(|&&x| x == r).count();
        assert!(count(1) > count(8));
    }

    #[test]
    fn single_rank_always_draws_one() {
        let zipf = Zipf::new(1, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| zipf.sample(&mut rng) == 1));
        assert_eq!(zipf.head_mass(1), 1.0);
    }
}
