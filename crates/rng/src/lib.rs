//! A self-contained, dependency-free pseudo-random number library exposing
//! the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this drop-in: the dependency is declared as
//! `rand = { package = "wnw-rand", path = "crates/rng" }`, which lets every
//! crate keep writing `use rand::Rng` unchanged. The surface is deliberately
//! small — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`seq::SliceRandom`], plus the
//! workspace's own [`zipf::Zipf`] skew distribution — and the
//! semantics match the real crate (half-open ranges, unbiased integer
//! sampling, 53-bit uniform floats, Fisher–Yates shuffling).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64,
//! a well-studied combination with 256 bits of state that passes BigCrush.
//! Streams seeded from different `u64` values are decorrelated, which is what
//! the sampling engine's per-walker `seed ⊕ walker_id` scheme relies on.
//! Sequences differ from the real `rand::rngs::StdRng` (ChaCha12), so tests
//! must assert distributional properties, not exact draws — the workspace's
//! tests already do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

pub mod zipf;

/// A source of random 64-bit words. The base trait every generator implements.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds give equal
    /// streams; different seeds give decorrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from a uniform bit stream.
pub trait SampleStandard: Sized {
    /// Draws one value from the type's "standard" distribution
    /// (`[0, 1)` for floats, the full range for integers, fair for bools).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits, as the real rand crate does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased draw from `[0, bound)` by rejecting the biased tail of the
/// 64-bit space (Lemire-style threshold).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * bound as u128) >> 64) as u64;
        let lo = (x as u128 * bound as u128) as u64;
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience methods every [`RngCore`] gets for free.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical way to fill xoshiro state
            // from a small seed (avoids the all-zero state by construction).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2018).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for code written against `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn floats_are_in_unit_interval_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(draws.iter().any(|&x| x < 0.01));
        assert!(draws.iter().any(|&x| x > 0.99));
    }

    #[test]
    fn int_ranges_are_uniform_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
        let f = rng.gen_range(-2.0..3.0);
        assert!((-2.0..3.0).contains(&f));
    }

    #[test]
    fn choose_and_shuffle_behave() {
        let mut rng = StdRng::seed_from_u64(13);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4, 5];
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[(*items.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));

        let mut v: Vec<u32> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must be a permutation");
        assert_ne!(
            v, original,
            "a 50-element shuffle virtually never is the identity"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn works_through_unsized_and_nested_refs() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            let _ = rng.gen_range(0..10usize);
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(19);
        let x = takes_dynish(&mut rng);
        assert!((0.0..1.0).contains(&x));
        // Nested &mut as some call sites produce.
        let r2 = &mut rng;
        let y = takes_dynish(&mut &mut *r2);
        assert!((0.0..1.0).contains(&y));
    }
}
