//! Per-node attribute storage.
//!
//! The paper's aggregate-estimation experiments average measures "associated
//! with a node" (Section 7.1): star ratings on Yelp, the number of words in a
//! user's self-description on Google Plus, in/out-degrees on Twitter. This
//! module stores such attributes as named dense `f64` columns next to the
//! graph so estimators can be written once against `attribute(name, v)`.

use crate::error::GraphError;
use crate::node::NodeId;
use std::collections::BTreeMap;

/// A named, dense, per-node `f64` column.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAttributes {
    values: Vec<f64>,
}

impl NodeAttributes {
    /// Wraps a value vector (one entry per node).
    pub fn new(values: Vec<f64>) -> Self {
        NodeAttributes { values }
    }

    /// Value at node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range for the column.
    #[inline]
    pub fn value(&self, v: NodeId) -> f64 {
        self.values[v.index()]
    }

    /// The full column as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Number of entries (equals the node count of the owning graph).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Exact population mean of the column — the ground truth the sampling
    /// experiments compare their estimates against.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }
}

/// All attribute columns of a graph, keyed by name.
///
/// A `BTreeMap` keeps iteration deterministic, which keeps experiment output
/// and snapshots byte-for-byte reproducible across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributeTable {
    node_count: usize,
    columns: BTreeMap<String, NodeAttributes>,
}

impl AttributeTable {
    /// Creates an empty table for a graph with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        AttributeTable {
            node_count,
            columns: BTreeMap::new(),
        }
    }

    /// Registers (or replaces) the column `name`.
    ///
    /// `expected_nodes` is the node count of the owning graph; the call fails
    /// if `values.len()` differs.
    pub fn insert(
        &mut self,
        name: &str,
        values: Vec<f64>,
        expected_nodes: usize,
    ) -> Result<(), GraphError> {
        if values.len() != expected_nodes {
            return Err(GraphError::AttributeLengthMismatch {
                name: name.to_string(),
                values: values.len(),
                nodes: expected_nodes,
            });
        }
        self.node_count = expected_nodes;
        self.columns
            .insert(name.to_string(), NodeAttributes::new(values));
        Ok(())
    }

    /// Returns the column `name`, if registered.
    pub fn column(&self, name: &str) -> Option<&NodeAttributes> {
        self.columns.get(name)
    }

    /// Value of attribute `name` at node `v`.
    pub fn value(&self, name: &str, v: NodeId) -> Result<f64, GraphError> {
        let col = self
            .columns
            .get(name)
            .ok_or_else(|| GraphError::UnknownAttribute(name.to_string()))?;
        if v.index() >= col.len() {
            return Err(GraphError::NodeOutOfRange {
                node: v.index(),
                node_count: col.len(),
            });
        }
        Ok(col.value(v))
    }

    /// Names of all registered columns, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(|s| s.as_str())
    }

    /// Number of registered columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether no columns are registered.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut t = AttributeTable::new(3);
        t.insert("stars", vec![1.0, 3.0, 5.0], 3).unwrap();
        assert_eq!(t.value("stars", NodeId(1)).unwrap(), 3.0);
        assert_eq!(t.column("stars").unwrap().mean(), 3.0);
        assert_eq!(t.names().collect::<Vec<_>>(), vec!["stars"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let mut t = AttributeTable::new(3);
        let err = t.insert("stars", vec![1.0], 3).unwrap_err();
        assert!(matches!(err, GraphError::AttributeLengthMismatch { .. }));
    }

    #[test]
    fn unknown_attribute_and_out_of_range() {
        let mut t = AttributeTable::new(2);
        t.insert("x", vec![0.5, 0.7], 2).unwrap();
        assert!(matches!(
            t.value("y", NodeId(0)),
            Err(GraphError::UnknownAttribute(_))
        ));
        assert!(matches!(
            t.value("x", NodeId(5)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn column_mean_of_empty_is_zero() {
        let c = NodeAttributes::new(vec![]);
        assert_eq!(c.mean(), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn replacing_a_column_overwrites_values() {
        let mut t = AttributeTable::new(2);
        t.insert("x", vec![1.0, 1.0], 2).unwrap();
        t.insert("x", vec![2.0, 4.0], 2).unwrap();
        assert_eq!(t.value("x", NodeId(1)).unwrap(), 4.0);
        assert_eq!(t.len(), 1);
    }
}
