//! Compressed-sparse-row undirected graph.
//!
//! This is the in-memory stand-in for the online social network topology.
//! Random walks only ever ask for `neighbors(v)` and `degree(v)`, so the
//! representation optimises exactly those: a single offsets array plus a
//! single adjacency array, giving contiguous neighbor slices and O(1)
//! degrees with minimal memory overhead (8 bytes per node + 8 bytes per
//! undirected edge).

use crate::attributes::AttributeTable;
use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

/// An immutable, simple, undirected graph in CSR form.
///
/// Construct one through [`GraphBuilder`](crate::GraphBuilder), a generator
/// in [`generators`](crate::generators), or [`io`](crate::io).
#[derive(Debug, Clone)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `adjacency` for node `v`.
    offsets: Vec<u64>,
    /// Concatenated, per-node-sorted neighbor lists. Each undirected edge
    /// appears twice (once per endpoint).
    adjacency: Vec<NodeId>,
    /// Number of undirected edges.
    edge_count: usize,
    /// Optional per-node attributes (stars, self-description length, ...).
    attributes: AttributeTable,
}

impl Graph {
    /// Builds a graph from an already sorted, deduplicated edge list where
    /// each pair is stored with the smaller endpoint first.
    ///
    /// This is the internal constructor used by
    /// [`GraphBuilder::build`](crate::GraphBuilder::build).
    pub(crate) fn from_deduped_edges(node_count: usize, edges: &[(u32, u32)]) -> Self {
        let mut degrees = vec![0u64; node_count];
        for &(u, v) in edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..node_count].to_vec();
        let mut adjacency = vec![NodeId(0); acc as usize];
        for &(u, v) in edges {
            adjacency[cursor[u as usize] as usize] = NodeId(v);
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize] as usize] = NodeId(u);
            cursor[v as usize] += 1;
        }
        // Edges arrive sorted by (min, max); per-node lists built this way are
        // sorted for the "min" orientation but interleaved for the "max" one,
        // so sort each slice to guarantee the documented ordering.
        for v in 0..node_count {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            adjacency[lo..hi].sort_unstable();
        }
        Graph {
            offsets,
            adjacency,
            edge_count: edges.len(),
            attributes: AttributeTable::new(node_count),
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Returns `true` if `v` is a valid node of this graph.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        v.index() < self.node_count()
    }

    /// Validates that `v` belongs to the graph.
    pub fn check_node(&self, v: NodeId) -> Result<()> {
        if self.contains(v) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v.index(),
                node_count: self.node_count(),
            })
        }
    }

    /// Degree `d(v) = |N(v)|`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The neighbor list `N(v)`, sorted by node id.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.adjacency[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Returns `true` if the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if !self.contains(u) || !self.contains(v) {
            return false;
        }
        // Search the shorter adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all undirected edges, each reported once as `(u, v)`
    /// with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree `d_max` over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree `d_min` over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2|E| / |V|`.
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.node_count() as f64
    }

    /// Read-only access to the attribute table.
    pub fn attributes(&self) -> &AttributeTable {
        &self.attributes
    }

    /// Mutable access to the attribute table (used by dataset surrogates to
    /// attach "stars", "self-description length", etc.).
    pub fn attributes_mut(&mut self) -> &mut AttributeTable {
        &mut self.attributes
    }

    /// Attaches a named numeric attribute with one value per node.
    ///
    /// Convenience wrapper over [`AttributeTable::insert`].
    pub fn set_attribute(&mut self, name: &str, values: Vec<f64>) -> Result<()> {
        let nodes = self.node_count();
        self.attributes.insert(name, values, nodes)
    }

    /// Looks up the value of attribute `name` at node `v`.
    pub fn attribute(&self, name: &str, v: NodeId) -> Result<f64> {
        self.check_node(v)?;
        self.attributes.value(name, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path4() -> Graph {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        b.build()
    }

    #[test]
    fn csr_layout_is_consistent() {
        let g = path4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(1), NodeId(3)]);
        assert_eq!(g.neighbors(NodeId(3)), &[NodeId(2)]);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn has_edge_both_orientations() {
        let g = path4();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(0), NodeId(99)));
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3))
            ]
        );
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let mut b = GraphBuilder::new();
        // Insert edges in a scrambled order around node 3.
        b.extend_edges([(3u32, 7u32), (3, 1), (3, 5), (3, 0), (0, 1)]);
        let g = b.build();
        let nbrs = g.neighbors(NodeId(3));
        let mut sorted = nbrs.to_vec();
        sorted.sort();
        assert_eq!(nbrs, &sorted[..]);
    }

    #[test]
    fn check_node_errors_out_of_range() {
        let g = path4();
        assert!(g.check_node(NodeId(3)).is_ok());
        assert!(g.check_node(NodeId(4)).is_err());
    }

    #[test]
    fn attributes_roundtrip() {
        let mut g = path4();
        g.set_attribute("stars", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(g.attribute("stars", NodeId(2)).unwrap(), 3.0);
        assert!(g.attribute("missing", NodeId(2)).is_err());
        assert!(g.set_attribute("short", vec![1.0]).is_err());
    }

    #[test]
    fn empty_graph_degenerate_values() {
        let g = GraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn clone_preserves_structure() {
        // Full serialization is exercised by the `io` module tests; here just
        // check that cloning preserves all observable state.
        let g = path4();
        let h = g.clone();
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(g.edge_count(), h.edge_count());
        for v in g.nodes() {
            assert_eq!(g.neighbors(v), h.neighbors(v));
        }
    }
}
