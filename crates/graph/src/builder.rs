//! Incremental construction of undirected graphs.
//!
//! Generators and file loaders accumulate edges into a [`GraphBuilder`],
//! which deduplicates parallel edges and drops self-loops before freezing the
//! edge set into the CSR [`Graph`]. The paper's graph model is a
//! simple undirected graph (Section 2.1), so both choices are deliberate.

use crate::graph::Graph;
use crate::node::NodeId;

/// Accumulates an edge list and freezes it into a [`Graph`].
///
/// Duplicate edges (in either orientation) and self-loops are silently
/// ignored; the node count grows to cover the largest endpoint seen, and may
/// also be raised explicitly with [`GraphBuilder::ensure_node`] so isolated
/// nodes survive.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    /// Edges stored with the smaller endpoint first.
    edges: Vec<(u32, u32)>,
    node_count: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting `nodes` nodes and roughly `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            node_count: nodes,
        }
    }

    /// Number of nodes the built graph will have (so far).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of (possibly duplicated) edge insertions recorded so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Makes sure node `v` exists even if no edge touches it.
    pub fn ensure_node(&mut self, v: impl Into<NodeId>) -> &mut Self {
        let v = v.into().index();
        if v + 1 > self.node_count {
            self.node_count = v + 1;
        }
        self
    }

    /// Makes sure nodes `0..n` exist.
    pub fn ensure_nodes(&mut self, n: usize) -> &mut Self {
        if n > self.node_count {
            self.node_count = n;
        }
        self
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored.
    pub fn add_edge(&mut self, u: impl Into<NodeId>, v: impl Into<NodeId>) -> &mut Self {
        let u = u.into();
        let v = v.into();
        self.ensure_node(u);
        self.ensure_node(v);
        if u == v {
            return self;
        }
        let (a, b) = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.edges.push((a, b));
        self
    }

    /// Adds every edge of an iterator of `(u, v)` pairs.
    pub fn extend_edges<I, U, V>(&mut self, iter: I) -> &mut Self
    where
        I: IntoIterator<Item = (U, V)>,
        U: Into<NodeId>,
        V: Into<NodeId>,
    {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Freezes the accumulated edges into a CSR [`Graph`].
    ///
    /// Parallel edges are removed; the neighbor lists of the resulting graph
    /// are sorted by node id.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_deduped_edges(self.node_count, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_triangle() {
        let mut b = GraphBuilder::new();
        b.add_edge(0u32, 1u32)
            .add_edge(1u32, 2u32)
            .add_edge(2u32, 0u32);
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn deduplicates_and_ignores_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(0u32, 1u32)
            .add_edge(1u32, 0u32)
            .add_edge(0u32, 1u32)
            .add_edge(1u32, 1u32);
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn isolated_nodes_survive() {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(5);
        b.add_edge(0u32, 1u32);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.degree(NodeId(4)), 0);
        assert!(g.neighbors(NodeId(4)).is_empty());
    }

    #[test]
    fn extend_edges_matches_individual_adds() {
        let mut a = GraphBuilder::new();
        a.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let mut b = GraphBuilder::new();
        b.add_edge(0u32, 1u32)
            .add_edge(1u32, 2u32)
            .add_edge(2u32, 3u32);
        let ga = a.build();
        let gb = b.build();
        assert_eq!(ga.node_count(), gb.node_count());
        assert_eq!(ga.edge_count(), gb.edge_count());
        for v in ga.nodes() {
            assert_eq!(ga.neighbors(v), gb.neighbors(v));
        }
    }

    #[test]
    fn with_capacity_tracks_nodes() {
        let b = GraphBuilder::with_capacity(10, 20);
        assert_eq!(b.node_count(), 10);
        assert_eq!(b.raw_edge_count(), 0);
    }
}
