//! Plain-text graph formats.
//!
//! Real OSN datasets (SNAP edge lists, crawler output) typically arrive as
//! whitespace-separated edge lists, so this module reads and writes:
//!
//! * **edge lists** — one `u v` pair per line, `#`-prefixed comments allowed,
//!   node ids need not be dense (they are remapped in first-seen order), and
//! * **snapshots** — a self-contained text format that also carries node
//!   attributes, used to cache generated surrogate datasets between
//!   experiment runs.
//!
//! Both formats are deliberately plain text rather than a serde binary format
//! so datasets remain inspectable with standard shell tools.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::Result;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an undirected edge list from a reader.
///
/// Lines are `u v` (whitespace separated); blank lines and lines starting
/// with `#` or `%` are skipped. Node ids are remapped to a dense `0..n` range
/// in first-seen order; self-loops and duplicate edges are dropped.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let mut remap: HashMap<u64, u32> = HashMap::new();
    let mut builder = GraphBuilder::new();
    let intern = |raw: u64, remap: &mut HashMap<u64, u32>| -> u32 {
        let next = remap.len() as u32;
        *remap.entry(raw).or_insert(next)
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, lineno: usize| -> Result<u64> {
            let tok = tok.ok_or(GraphError::Parse {
                line: lineno + 1,
                message: "expected two node ids per line".into(),
            })?;
            tok.parse::<u64>().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("`{tok}` is not a non-negative integer node id"),
            })
        };
        let u = parse(parts.next(), lineno)?;
        let v = parse(parts.next(), lineno)?;
        let u = intern(u, &mut remap);
        let v = intern(v, &mut remap);
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Reads an edge list from a file path. See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes the graph as an edge list (`u v` per line, each undirected edge
/// once), preceded by a comment header with node/edge counts.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# walk-not-wait edge list")?;
    writeln!(w, "# nodes {} edges {}", g.node_count(), g.edge_count())?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u.0, v.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes an edge list to a file path. See [`write_edge_list`].
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

/// Writes a self-contained snapshot: node count, edges, and every attribute
/// column. Format:
///
/// ```text
/// wnw-snapshot v1
/// nodes <n>
/// edges <m>
/// <u> <v>            (m lines)
/// attr <name> <n>
/// <value>            (n lines, one per node)
/// ```
pub fn write_snapshot<W: Write>(g: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "wnw-snapshot v1")?;
    writeln!(w, "nodes {}", g.node_count())?;
    writeln!(w, "edges {}", g.edge_count())?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u.0, v.0)?;
    }
    for name in g.attributes().names() {
        let col = g
            .attributes()
            .column(name)
            .expect("name came from the table");
        writeln!(w, "attr {} {}", name, col.len())?;
        for v in col.as_slice() {
            writeln!(w, "{v}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes a snapshot to a file path. See [`write_snapshot`].
pub fn write_snapshot_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_snapshot(g, file)
}

/// Reads a snapshot written by [`write_snapshot`].
pub fn read_snapshot<R: Read>(reader: R) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let lines: Vec<String> = reader.lines().collect::<std::io::Result<_>>()?;
    let mut cursor = SnapshotCursor {
        lines: &lines,
        pos: 0,
    };

    let (i, header) = cursor.next_line("header")?;
    if header.trim() != "wnw-snapshot v1" {
        return Err(GraphError::Parse {
            line: i + 1,
            message: "missing `wnw-snapshot v1` header".into(),
        });
    }
    let (i, nodes_line) = cursor.next_line("nodes")?;
    let n = parse_count(&nodes_line, i, "nodes")?;
    let (i, edges_line) = cursor.next_line("edges")?;
    let m = parse_count(&edges_line, i, "edges")?;

    let mut builder = GraphBuilder::with_capacity(n, m);
    builder.ensure_nodes(n);
    for _ in 0..m {
        let (i, line) = cursor.next_line("edge")?;
        let mut parts = line.split_whitespace();
        let u: u32 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(GraphError::Parse {
                line: i + 1,
                message: "bad edge line".into(),
            })?;
        let v: u32 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(GraphError::Parse {
                line: i + 1,
                message: "bad edge line".into(),
            })?;
        builder.add_edge(u, v);
    }
    let mut graph = builder.build();

    // Attribute sections until EOF.
    while let Some((i, line)) = cursor.next_nonempty_line() {
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some("attr"), Some(name), Some(count)) => {
                let count: usize = count.parse().map_err(|_| GraphError::Parse {
                    line: i + 1,
                    message: "bad attribute count".into(),
                })?;
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let (j, vline) = cursor.next_line("attribute value")?;
                    let v: f64 = vline.trim().parse().map_err(|_| GraphError::Parse {
                        line: j + 1,
                        message: format!("`{vline}` is not a number"),
                    })?;
                    values.push(v);
                }
                graph.set_attribute(name, values)?;
            }
            _ => {
                return Err(GraphError::Parse {
                    line: i + 1,
                    message: format!("expected `attr <name> <count>`, got `{line}`"),
                })
            }
        }
    }
    Ok(graph)
}

/// Cursor over pre-read snapshot lines, tracking 0-based positions so parse
/// errors can report 1-based line numbers.
struct SnapshotCursor<'a> {
    lines: &'a [String],
    pos: usize,
}

impl SnapshotCursor<'_> {
    fn next_line(&mut self, expect: &str) -> Result<(usize, String)> {
        match self.lines.get(self.pos) {
            Some(l) => {
                let i = self.pos;
                self.pos += 1;
                Ok((i, l.clone()))
            }
            None => Err(GraphError::Parse {
                line: self.pos,
                message: format!("unexpected end of file, expected {expect}"),
            }),
        }
    }

    fn next_nonempty_line(&mut self) -> Option<(usize, String)> {
        while let Some(l) = self.lines.get(self.pos) {
            let i = self.pos;
            self.pos += 1;
            if !l.trim().is_empty() {
                return Some((i, l.clone()));
            }
        }
        None
    }
}

fn parse_count(line: &str, lineno: usize, key: &str) -> Result<usize> {
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some(k), Some(v)) if k == key => v.parse::<usize>().map_err(|_| GraphError::Parse {
            line: lineno + 1,
            message: format!("`{v}` is not a count"),
        }),
        _ => Err(GraphError::Parse {
            line: lineno + 1,
            message: format!("expected `{key} <count>`"),
        }),
    }
}

/// Reads a snapshot from a file path. See [`read_snapshot`].
pub fn read_snapshot_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let file = std::fs::File::open(path)?;
    read_snapshot(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::cycle;
    use crate::generators::random::barabasi_albert;
    use crate::node::NodeId;

    #[test]
    fn edge_list_roundtrip() {
        let g = barabasi_albert(50, 3, 1).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
    }

    #[test]
    fn edge_list_parses_comments_and_sparse_ids() {
        let text = "# comment\n% another\n\n100 200\n200 300\n100 300\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("1 x\n".as_bytes()).is_err());
        assert!(read_edge_list("1\n".as_bytes()).is_err());
    }

    #[test]
    fn snapshot_roundtrip_with_attributes() {
        let mut g = cycle(6);
        g.set_attribute("stars", vec![1.0, 2.0, 3.0, 4.0, 5.0, 2.5])
            .unwrap();
        g.set_attribute("words", vec![10.0; 6]).unwrap();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        let h = read_snapshot(&buf[..]).unwrap();
        assert_eq!(h.node_count(), 6);
        assert_eq!(h.edge_count(), 6);
        assert_eq!(h.attribute("stars", NodeId(4)).unwrap(), 5.0);
        assert_eq!(h.attribute("words", NodeId(0)).unwrap(), 10.0);
        assert_eq!(h.attributes().len(), 2);
    }

    #[test]
    fn snapshot_rejects_bad_header() {
        assert!(read_snapshot("not a snapshot\n".as_bytes()).is_err());
        assert!(read_snapshot("wnw-snapshot v1\nnodes x\n".as_bytes()).is_err());
        assert!(read_snapshot("wnw-snapshot v1\nnodes 2\nedges 1\n0 zzz\n".as_bytes()).is_err());
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let dir = std::env::temp_dir().join("wnw_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle.snapshot");
        let g = cycle(5);
        write_snapshot_file(&g, &path).unwrap();
        let h = read_snapshot_file(&path).unwrap();
        assert_eq!(h.node_count(), 5);
        assert_eq!(h.edge_count(), 5);
        std::fs::remove_file(&path).ok();
    }
}
