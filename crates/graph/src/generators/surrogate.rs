//! Surrogate datasets standing in for the paper's real-world crawls.
//!
//! The paper evaluates WALK-ESTIMATE on three crawled graphs that are not
//! redistributable (Google Plus crawl, Yelp academic dataset, SNAP
//! ego-Twitter). Per the substitution policy in `DESIGN.md`, this module
//! builds synthetic graphs that match the *properties the sampling algorithms
//! actually interact with*:
//!
//! * degree distribution shape (heavy-tailed, preferential attachment),
//! * average degree / density,
//! * small diameter,
//! * node attributes with realistic variance (star ratings, self-description
//!   length, in/out-degree),
//!
//! because SRW/MHRW/WE only see the graph through `neighbors(v)` and read the
//! attribute of sampled nodes. Absolute error numbers differ from the paper;
//! the comparisons (who wins at a given query budget, how heuristics rank)
//! are preserved.
//!
//! Each generator accepts a node count so experiments can be run scaled down
//! (default) or at paper scale (16 405 / 120 000 / 81 306 nodes).

use crate::error::GraphError;
use crate::generators::random::{
    barabasi_albert, directed_preferential_attachment, mutual_undirected,
};
use crate::graph::Graph;
use crate::metrics;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attribute name for the Yelp-like star rating (1.0–5.0).
pub const ATTR_STARS: &str = "stars";
/// Attribute name for the Google-Plus-like self-description word count.
pub const ATTR_SELF_DESCRIPTION_WORDS: &str = "self_description_words";
/// Attribute name for the Twitter-like in-degree (followers).
pub const ATTR_IN_DEGREE: &str = "in_degree";
/// Attribute name for the Twitter-like out-degree (followees).
pub const ATTR_OUT_DEGREE: &str = "out_degree";

/// A surrogate dataset: the graph plus its provenance metadata.
#[derive(Debug, Clone)]
pub struct SurrogateDataset {
    /// Human-readable name ("google-plus-like", ...).
    pub name: String,
    /// The generated graph (largest connected component, attributes attached).
    pub graph: Graph,
    /// What the paper reports for the real dataset, for the record.
    pub paper_reference: &'static str,
}

/// Restricts a graph to its largest connected component, remapping node ids
/// to a dense range and carrying attributes over.
///
/// The paper's Yelp experiment explicitly uses "the largest connected
/// component of the user-user graph"; random-walk sampling in general is only
/// well-defined on a connected graph.
pub fn largest_connected_component(g: &Graph) -> Graph {
    metrics::largest_connected_component(g)
}

/// Google-Plus-like surrogate.
///
/// Paper reference: 16 405 users, > 4.5M connections, average degree 560.44,
/// with a free-text self-description per user whose word count is averaged in
/// Figure 6(b)/(d).
///
/// Construction: dense Barabási–Albert graph with `m ≈ avg_degree / 2`
/// (preferential attachment reproduces the heavy-tailed follower counts of a
/// celebrity-seeded crawl), plus a `self_description_words` attribute that is
/// mildly correlated with degree (popular accounts tend to fill in profiles)
/// with high dispersion.
pub fn google_plus_like(n: usize, seed: u64) -> Result<SurrogateDataset> {
    // Average degree ≈ 2m. The real crawl has ~560 over 16 405 users; scaled
    //-down surrogates keep the *density ratio* (avg degree / node count)
    // rather than the absolute degree, so query budgets, crawl costs and
    // walk behaviour stay proportionate to the paper's setting.
    let target_avg_degree = (560.0 * n as f64 / 16_405.0).clamp(8.0, 560.0);
    let m = ((target_avg_degree / 2.0).round() as usize).max(4);
    if n <= m + 1 {
        return Err(GraphError::InvalidGeneratorParameters(format!(
            "google_plus_like needs n > {m}, got {n}"
        )));
    }
    let mut graph = barabasi_albert(n, m, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let words: Vec<f64> = graph
        .nodes()
        .map(|v| {
            let degree_boost = (graph.degree(v) as f64 + 1.0).ln();
            let base = rng.gen_range(0.0..40.0);
            let verbose = if rng.gen::<f64>() < 0.2 {
                rng.gen_range(40.0..200.0)
            } else {
                0.0
            };
            (base + 3.0 * degree_boost + verbose).round()
        })
        .collect();
    graph.set_attribute(ATTR_SELF_DESCRIPTION_WORDS, words)?;
    Ok(SurrogateDataset {
        name: "google-plus-like".into(),
        graph,
        paper_reference:
            "Google Plus crawl: 16,405 users, ~4.5M edges, avg degree 560.44, self-description text",
    })
}

/// Yelp-like surrogate.
///
/// Paper reference: largest connected component of the user-user
/// co-review graph, ~120 000 nodes, > 954 000 edges (avg degree ≈ 15.9),
/// star rating per user (Figure 7).
///
/// Construction: sparse Barabási–Albert graph (`m = 8`) restricted to its
/// largest connected component, plus a `stars` attribute in `[1, 5]` with the
/// bulk of the mass between 3 and 4.5 and a weak degree correlation (active
/// reviewers converge to the mean).
pub fn yelp_like(n: usize, seed: u64) -> Result<SurrogateDataset> {
    let m = 8usize;
    if n <= m + 1 {
        return Err(GraphError::InvalidGeneratorParameters(format!(
            "yelp_like needs n > {m}, got {n}"
        )));
    }
    let base = barabasi_albert(n, m, seed)?;
    let mut graph = largest_connected_component(&base);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51_7c_c1_b7_27_22_0a_95);
    let stars: Vec<f64> = graph
        .nodes()
        .map(|v| {
            let d = graph.degree(v) as f64;
            // Heavier reviewers regress toward 3.7; casual ones are noisier.
            let spread = 1.6 / (1.0 + (d / 50.0));
            let raw = 3.7 + rng.gen_range(-spread..spread);
            (raw.clamp(1.0, 5.0) * 2.0).round() / 2.0 // half-star precision
        })
        .collect();
    graph.set_attribute(ATTR_STARS, stars)?;
    Ok(SurrogateDataset {
        name: "yelp-like".into(),
        graph,
        paper_reference:
            "Yelp academic dataset user-user graph: ~120k nodes, ~954k edges, star ratings",
    })
}

/// Twitter-like surrogate.
///
/// Paper reference: SNAP ego-Twitter, ~80 000 nodes, > 1.7M edges, reduced to
/// an undirected graph of mutual follows; Figure 8 averages in-degree,
/// out-degree and local clustering coefficient.
///
/// Construction: directed preferential attachment with reciprocity 0.55,
/// reduced to mutual edges, restricted to the largest connected component.
/// The original in/out-degrees are attached as attributes so the Figure 8
/// aggregates can be estimated.
pub fn twitter_like(n: usize, seed: u64) -> Result<SurrogateDataset> {
    let m_out = 12usize;
    if n <= m_out + 1 {
        return Err(GraphError::InvalidGeneratorParameters(format!(
            "twitter_like needs n > {m_out}, got {n}"
        )));
    }
    let directed = directed_preferential_attachment(n, m_out, 0.55, seed)?;
    let mut in_deg = vec![0.0f64; n];
    let mut out_deg = vec![0.0f64; n];
    for &(u, v) in &directed {
        out_deg[u as usize] += 1.0;
        in_deg[v as usize] += 1.0;
    }
    let full = mutual_undirected(n, &directed);
    // Attach attributes before taking the component so the remapping carries
    // the correct per-node values along.
    let mut full = full;
    full.set_attribute(ATTR_IN_DEGREE, in_deg)?;
    full.set_attribute(ATTR_OUT_DEGREE, out_deg)?;
    let graph = largest_connected_component(&full);
    Ok(SurrogateDataset {
        name: "twitter-like".into(),
        graph,
        paper_reference:
            "SNAP ego-Twitter: ~80k nodes, ~1.7M directed edges, reduced to mutual undirected edges",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_plus_like_is_dense_and_connected() {
        let ds = google_plus_like(400, 1).unwrap();
        let g = &ds.graph;
        assert_eq!(metrics::connected_components(g), 1);
        // Density ratio matches the real crawl: 560/16405 ≈ 3.4% of nodes.
        assert!(
            g.average_degree() > 0.02 * g.node_count() as f64,
            "avg degree {}",
            g.average_degree()
        );
        let col = g.attributes().column(ATTR_SELF_DESCRIPTION_WORDS).unwrap();
        assert_eq!(col.len(), g.node_count());
        assert!(col.mean() > 0.0);
    }

    #[test]
    fn yelp_like_has_bounded_stars() {
        let ds = yelp_like(500, 2).unwrap();
        let g = &ds.graph;
        assert_eq!(metrics::connected_components(g), 1);
        let stars = g.attributes().column(ATTR_STARS).unwrap();
        assert!(stars.as_slice().iter().all(|&s| (1.0..=5.0).contains(&s)));
        assert!(stars.mean() > 2.5 && stars.mean() < 4.5);
    }

    #[test]
    fn twitter_like_keeps_direction_attributes() {
        let ds = twitter_like(600, 3).unwrap();
        let g = &ds.graph;
        assert_eq!(metrics::connected_components(g), 1);
        assert!(g.attributes().column(ATTR_IN_DEGREE).is_some());
        assert!(g.attributes().column(ATTR_OUT_DEGREE).is_some());
        // In-degree mass equals out-degree mass in the directed model only
        // over the full node set; after LCC restriction both remain positive.
        assert!(g.attributes().column(ATTR_IN_DEGREE).unwrap().mean() > 0.0);
        assert!(g.attributes().column(ATTR_OUT_DEGREE).unwrap().mean() > 0.0);
    }

    #[test]
    fn surrogates_are_seed_deterministic() {
        let a = yelp_like(300, 9).unwrap();
        let b = yelp_like(300, 9).unwrap();
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(
            a.graph.attributes().column(ATTR_STARS).unwrap(),
            b.graph.attributes().column(ATTR_STARS).unwrap()
        );
    }

    #[test]
    fn surrogates_reject_tiny_sizes() {
        assert!(google_plus_like(3, 1).is_err());
        assert!(yelp_like(5, 1).is_err());
        assert!(twitter_like(5, 1).is_err());
    }
}
