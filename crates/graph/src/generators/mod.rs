//! Graph generators.
//!
//! Two families:
//!
//! * [`classic`] — the deterministic theoretical models of the paper's
//!   Section 4.2 case study (cycle, hypercube, barbell, balanced binary tree,
//!   complete graph, path, star, grid),
//! * [`random`] — random graph models (Erdős–Rényi, Barabási–Albert,
//!   Watts–Strogatz, directed preferential attachment), and
//! * [`surrogate`] — synthetic stand-ins for the paper's real-world datasets
//!   (Google Plus, Yelp, Twitter) including the node attributes the
//!   aggregate-estimation experiments need.
//!
//! All random generators take an explicit seed so experiments are
//! reproducible run to run.

pub mod classic;
pub mod random;
pub mod surrogate;

pub use classic::{balanced_binary_tree, barbell, complete, cycle, grid, hypercube, path, star};
pub use random::{barabasi_albert, erdos_renyi, watts_strogatz};
pub use surrogate::{google_plus_like, twitter_like, yelp_like, SurrogateDataset};
