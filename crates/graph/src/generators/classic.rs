//! Deterministic theoretical graph models.
//!
//! These are the models used in the paper's Section 4.2 case study of
//! IDEAL-WALK: *cycle*, *hypercube*, *barbell*, *(balanced binary) tree*, and
//! the scale-free Barabási–Albert model (the latter lives in
//! [`random`](crate::generators::random) because it is randomized). A few
//! extra standard models (complete, path, star, grid) are provided because
//! they make handy test fixtures with known diameters and degree profiles.

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Cycle graph `C_n`: a single circle of `n` nodes, diameter `⌊n/2⌋`.
///
/// The paper uses cycles as the worst case for WALK-ESTIMATE (Figure 5):
/// large diameter, spectral gap `O(n^-2)`.
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n);
    b.ensure_nodes(n);
    if n >= 2 {
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
        }
    }
    b.build()
}

/// Path graph `P_n`: `n` nodes in a line, diameter `n - 1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    b.ensure_nodes(n);
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.build()
}

/// Complete graph `K_n`: every pair of nodes connected, diameter 1.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    b.ensure_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j);
        }
    }
    b.build()
}

/// Star graph `S_n`: one hub connected to `n - 1` leaves, diameter 2.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    b.ensure_nodes(n);
    for i in 1..n {
        b.add_edge(0usize, i);
    }
    b.build()
}

/// `k`-dimensional hypercube `Q_k`: `2^k` nodes, `2^{k-1}·k` edges,
/// diameter `k`. Two nodes are adjacent iff their binary representations
/// differ in exactly one bit.
pub fn hypercube(k: u32) -> Graph {
    let n = 1usize << k;
    let mut b = GraphBuilder::with_capacity(n, n * k as usize / 2);
    b.ensure_nodes(n);
    for v in 0..n {
        for bit in 0..k {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v, u);
            }
        }
    }
    b.build()
}

/// Barbell graph of `n` nodes (for odd `n ≥ 3`): two copies of the complete
/// graph `K_{(n-1)/2}` joined by one central node, with one edge from the
/// central node into each half (the paper quotes diameter 3; under this
/// literal construction the worst-case distance between two non-attachment
/// nodes in opposite halves is 4). Either way the graph mixes extremely
/// slowly — the paper's counterexample for the heuristic walk-length rule
/// (Section 4.3).
///
/// For even `n` the extra node is added to the first clique so the total node
/// count is always `n`.
pub fn barbell(n: usize) -> Graph {
    if n < 3 {
        return complete(n);
    }
    let half = (n - 1) / 2;
    let first = half + (n - 1) % 2; // absorb the rounding remainder
    let second = half;
    let center = n - 1;
    let mut b = GraphBuilder::with_capacity(n, first * first / 2 + second * second / 2 + 2);
    b.ensure_nodes(n);
    // First clique occupies nodes [0, first).
    for i in 0..first {
        for j in (i + 1)..first {
            b.add_edge(i, j);
        }
    }
    // Second clique occupies nodes [first, first + second).
    for i in 0..second {
        for j in (i + 1)..second {
            b.add_edge(first + i, first + j);
        }
    }
    // Central node bridges the two cliques through a single edge each.
    if first > 0 {
        b.add_edge(center, 0usize);
    }
    if second > 0 {
        b.add_edge(center, first);
    }
    b.build()
}

/// Balanced binary tree of height `h`: `2^{h+1} - 1` nodes, diameter `2h`.
/// Node 0 is the root; node `i` has children `2i + 1` and `2i + 2`.
pub fn balanced_binary_tree(h: u32) -> Graph {
    let n = (1usize << (h + 1)) - 1;
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    b.ensure_nodes(n);
    for i in 0..n {
        let left = 2 * i + 1;
        let right = 2 * i + 2;
        if left < n {
            b.add_edge(i, left);
        }
        if right < n {
            b.add_edge(i, right);
        }
    }
    b.build()
}

/// `rows × cols` grid graph with 4-neighborhood, diameter `rows + cols - 2`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    b.ensure_nodes(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::node::NodeId;

    #[test]
    fn cycle_structure() {
        let g = cycle(8);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 8);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(metrics::exact_diameter(&g), Some(4));
    }

    #[test]
    fn cycle_degenerate_sizes() {
        assert_eq!(cycle(0).node_count(), 0);
        let g1 = cycle(1);
        assert_eq!(g1.node_count(), 1);
        assert_eq!(g1.edge_count(), 0);
        let g2 = cycle(2);
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn path_and_star() {
        let p = path(5);
        assert_eq!(p.edge_count(), 4);
        assert_eq!(metrics::exact_diameter(&p), Some(4));
        let s = star(6);
        assert_eq!(s.edge_count(), 5);
        assert_eq!(s.degree(NodeId(0)), 5);
        assert_eq!(metrics::exact_diameter(&s), Some(2));
    }

    #[test]
    fn complete_graph_diameter_one() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
        assert_eq!(metrics::exact_diameter(&g), Some(1));
    }

    #[test]
    fn hypercube_counts_match_formula() {
        // Paper: a k-hypercube has 2^k nodes and 2^{k-1}·k edges, diameter k.
        for k in 1..=5u32 {
            let g = hypercube(k);
            assert_eq!(g.node_count(), 1 << k);
            assert_eq!(g.edge_count(), (1 << (k - 1)) * k as usize);
            assert_eq!(metrics::exact_diameter(&g), Some(k as usize));
        }
    }

    #[test]
    fn barbell_has_small_diameter_and_is_connected() {
        let g = barbell(31);
        assert_eq!(g.node_count(), 31);
        assert_eq!(metrics::connected_components(&g), 1);
        let d = metrics::exact_diameter(&g).unwrap();
        assert!((3..=4).contains(&d), "barbell diameter {d}");
    }

    #[test]
    fn barbell_even_node_count_is_exact() {
        let g = barbell(10);
        assert_eq!(g.node_count(), 10);
        assert_eq!(metrics::connected_components(&g), 1);
    }

    #[test]
    fn barbell_tiny_falls_back_to_complete() {
        let g = barbell(2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn balanced_tree_structure() {
        // Height h => 2^{h+1}-1 nodes, diameter 2h (paper Section 4.2).
        for h in 1..=4u32 {
            let g = balanced_binary_tree(h);
            assert_eq!(g.node_count(), (1 << (h + 1)) - 1);
            assert_eq!(g.edge_count(), g.node_count() - 1);
            assert_eq!(metrics::exact_diameter(&g), Some(2 * h as usize));
            assert_eq!(metrics::connected_components(&g), 1);
        }
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(metrics::exact_diameter(&g), Some(5));
    }
}
