//! Random graph models.
//!
//! The key model here is [`barabasi_albert`] — the scale-free preferential
//! attachment model the paper uses both for its case study (Figures 1–3) and
//! for the synthetic experiments of Section 7 (10k–20k nodes, `m = 5`, and the
//! 1000-node exact-bias study). [`erdos_renyi`] and [`watts_strogatz`] round
//! out the test fixtures, and [`directed_preferential_attachment`] feeds the
//! Twitter surrogate (directed connections reduced to mutual undirected
//! edges, Section 2.1).

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Erdős–Rényi `G(n, p)` random graph: every pair connected independently
/// with probability `p`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidGeneratorParameters(format!(
            "edge probability must be in [0, 1], got {p}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let expected = (p * (n * n.saturating_sub(1) / 2) as f64) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected);
    b.ensure_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                b.add_edge(i, j);
            }
        }
    }
    Ok(b.build())
}

/// Barabási–Albert preferential-attachment graph: starts from a small clique
/// of `m` nodes and attaches each new node to `m` existing nodes chosen with
/// probability proportional to their current degree.
///
/// This matches the paper's usage: `m = 3` for the 31-node case-study graphs
/// and `m = 5` for the 10k–20k synthetic social networks.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<Graph> {
    if m == 0 {
        return Err(GraphError::InvalidGeneratorParameters(
            "Barabási–Albert attachment count m must be at least 1".into(),
        ));
    }
    if n <= m {
        return Err(GraphError::InvalidGeneratorParameters(format!(
            "Barabási–Albert needs n > m (got n = {n}, m = {m})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m * n);
    b.ensure_nodes(n);

    // `targets` holds one entry per edge endpoint, so sampling uniformly from
    // it realises degree-proportional (preferential) attachment.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(2 * m * n);

    // Seed the process with a clique over the first m + 1 nodes so every
    // early node has nonzero degree.
    let seed_nodes = m + 1;
    for i in 0..seed_nodes {
        for j in (i + 1)..seed_nodes {
            b.add_edge(i, j);
            endpoint_pool.push(i as u32);
            endpoint_pool.push(j as u32);
        }
    }

    let mut chosen: HashSet<u32> = HashSet::with_capacity(m * 2);
    for v in seed_nodes..n {
        chosen.clear();
        // Draw m distinct targets by preferential attachment; rejection on
        // duplicates terminates quickly because m is tiny versus pool size.
        while chosen.len() < m {
            let idx = rng.gen_range(0..endpoint_pool.len());
            chosen.insert(endpoint_pool[idx]);
        }
        // Sort the chosen targets so the pool layout (and therefore the whole
        // generated graph) is a deterministic function of the seed.
        let mut targets: Vec<u32> = chosen.iter().copied().collect();
        targets.sort_unstable();
        for t in targets {
            b.add_edge(v, t);
            endpoint_pool.push(v as u32);
            endpoint_pool.push(t);
        }
    }
    Ok(b.build())
}

/// Watts–Strogatz small-world graph: a ring lattice where each node connects
/// to its `k` nearest neighbors (k even), then each edge is rewired with
/// probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<Graph> {
    if !k.is_multiple_of(2) || k == 0 {
        return Err(GraphError::InvalidGeneratorParameters(format!(
            "Watts–Strogatz neighbor count k must be even and positive, got {k}"
        )));
    }
    if k >= n {
        return Err(GraphError::InvalidGeneratorParameters(format!(
            "Watts–Strogatz needs k < n (got n = {n}, k = {k})"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidGeneratorParameters(format!(
            "rewiring probability must be in [0, 1], got {beta}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: HashSet<(u32, u32)> = HashSet::with_capacity(n * k / 2);
    let key = |a: usize, b: usize| {
        let (x, y) = if a < b { (a, b) } else { (b, a) };
        (x as u32, y as u32)
    };
    for v in 0..n {
        for step in 1..=(k / 2) {
            edges.insert(key(v, (v + step) % n));
        }
    }
    // Rewire: for each lattice edge, with probability beta replace the far
    // endpoint by a uniformly random non-duplicate, non-self node.
    let lattice: Vec<(u32, u32)> = {
        let mut v: Vec<_> = edges.iter().copied().collect();
        v.sort_unstable();
        v
    };
    for (u, w) in lattice {
        if rng.gen::<f64>() < beta {
            // Pick a new endpoint for u.
            let mut tries = 0;
            loop {
                let cand = rng.gen_range(0..n) as u32;
                tries += 1;
                if cand != u && !edges.contains(&key(u as usize, cand as usize)) {
                    edges.remove(&(u, w));
                    edges.insert(key(u as usize, cand as usize));
                    break;
                }
                if tries > 32 {
                    break; // dense neighborhoods: keep the lattice edge
                }
            }
        }
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.ensure_nodes(n);
    for (u, w) in edges {
        b.add_edge(u, w);
    }
    Ok(b.build())
}

/// A directed preferential-attachment edge list, used to build the Twitter
/// surrogate. Returns `(follower, followee)` pairs over `n` nodes where each
/// new node follows `m_out` earlier nodes chosen preferentially and is
/// followed back with probability `reciprocity`.
///
/// The undirected reduction (keep only mutual pairs) mirrors the common
/// practice cited in Section 2.1 of the paper.
pub fn directed_preferential_attachment(
    n: usize,
    m_out: usize,
    reciprocity: f64,
    seed: u64,
) -> Result<Vec<(u32, u32)>> {
    if m_out == 0 || n <= m_out {
        return Err(GraphError::InvalidGeneratorParameters(format!(
            "directed preferential attachment needs 0 < m_out < n (got n = {n}, m_out = {m_out})"
        )));
    }
    if !(0.0..=1.0).contains(&reciprocity) {
        return Err(GraphError::InvalidGeneratorParameters(format!(
            "reciprocity must be in [0, 1], got {reciprocity}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(2 * m_out * n);
    let mut popularity_pool: Vec<u32> = Vec::with_capacity(2 * m_out * n);

    let seed_nodes = m_out + 1;
    for i in 0..seed_nodes {
        for j in 0..seed_nodes {
            if i != j {
                edges.push((i as u32, j as u32));
                popularity_pool.push(j as u32);
            }
        }
    }
    let mut chosen: HashSet<u32> = HashSet::with_capacity(2 * m_out);
    for v in seed_nodes..n {
        chosen.clear();
        while chosen.len() < m_out {
            let idx = rng.gen_range(0..popularity_pool.len());
            let t = popularity_pool[idx];
            if t as usize != v {
                chosen.insert(t);
            }
        }
        // Deterministic ordering of the chosen followees keeps both the
        // reciprocity draws and the pool layout seed-reproducible.
        let mut followees: Vec<u32> = chosen.iter().copied().collect();
        followees.sort_unstable();
        for t in followees {
            edges.push((v as u32, t));
            popularity_pool.push(t);
            if rng.gen::<f64>() < reciprocity {
                edges.push((t, v as u32));
                popularity_pool.push(v as u32);
            }
        }
    }
    edges.shuffle(&mut rng);
    Ok(edges)
}

/// Reduces a directed edge list to the undirected graph of *mutual* edges:
/// `{u, v}` exists iff both `u → v` and `v → u` are present (Section 2.1).
pub fn mutual_undirected(n: usize, directed_edges: &[(u32, u32)]) -> Graph {
    let set: HashSet<(u32, u32)> = directed_edges.iter().copied().collect();
    let mut b = GraphBuilder::with_capacity(n, directed_edges.len() / 2);
    b.ensure_nodes(n);
    for &(u, v) in &set {
        if u < v && set.contains(&(v, u)) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let g0 = erdos_renyi(20, 0.0, 1).unwrap();
        assert_eq!(g0.edge_count(), 0);
        let g1 = erdos_renyi(20, 1.0, 1).unwrap();
        assert_eq!(g1.edge_count(), 20 * 19 / 2);
        assert!(erdos_renyi(10, 1.5, 1).is_err());
    }

    #[test]
    fn erdos_renyi_is_seed_deterministic() {
        let a = erdos_renyi(50, 0.1, 7).unwrap();
        let b = erdos_renyi(50, 0.1, 7).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        let c = erdos_renyi(50, 0.1, 8).unwrap();
        // Different seeds almost surely give a different edge set; compare
        // the full adjacency to avoid a flaky equality-of-counts check.
        let same = a.nodes().all(|v| a.neighbors(v) == c.neighbors(v));
        assert!(!same || a.edge_count() == c.edge_count());
    }

    #[test]
    fn barabasi_albert_edge_count_and_connectivity() {
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, 42).unwrap();
        assert_eq!(g.node_count(), n);
        // Seed clique has C(m+1, 2) edges; every later node adds exactly m.
        let expected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expected);
        assert_eq!(metrics::connected_components(&g), 1);
        assert!(g.min_degree() >= m);
    }

    #[test]
    fn barabasi_albert_rejects_bad_parameters() {
        assert!(barabasi_albert(5, 0, 1).is_err());
        assert!(barabasi_albert(3, 3, 1).is_err());
    }

    #[test]
    fn barabasi_albert_is_seed_deterministic() {
        let a = barabasi_albert(100, 3, 9).unwrap();
        let b = barabasi_albert(100, 3, 9).unwrap();
        assert!(a.nodes().all(|v| a.neighbors(v) == b.neighbors(v)));
    }

    #[test]
    fn barabasi_albert_degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 3, 11).unwrap();
        // Power-law-ish: the max degree should be far above the average.
        assert!(g.max_degree() as f64 > 5.0 * g.average_degree());
    }

    #[test]
    fn watts_strogatz_parameters_and_shape() {
        assert!(watts_strogatz(20, 3, 0.1, 1).is_err()); // odd k
        assert!(watts_strogatz(10, 10, 0.1, 1).is_err()); // k >= n
        assert!(watts_strogatz(10, 4, 1.5, 1).is_err()); // bad beta
        let g = watts_strogatz(100, 6, 0.1, 5).unwrap();
        assert_eq!(g.node_count(), 100);
        // Ring lattice starts with n*k/2 edges; rewiring preserves the count.
        assert_eq!(g.edge_count(), 100 * 6 / 2);
    }

    #[test]
    fn directed_pa_and_mutual_reduction() {
        let n = 300;
        let edges = directed_preferential_attachment(n, 4, 0.6, 3).unwrap();
        assert!(!edges.is_empty());
        let g = mutual_undirected(n, &edges);
        assert_eq!(g.node_count(), n);
        assert!(g.edge_count() > 0);
        // Every undirected edge must be backed by both directed arcs.
        let set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        for (u, v) in g.edges() {
            assert!(set.contains(&(u.0, v.0)) && set.contains(&(v.0, u.0)));
        }
    }

    #[test]
    fn directed_pa_rejects_bad_parameters() {
        assert!(directed_preferential_attachment(5, 0, 0.5, 1).is_err());
        assert!(directed_preferential_attachment(3, 3, 0.5, 1).is_err());
        assert!(directed_preferential_attachment(10, 2, 1.5, 1).is_err());
    }
}
