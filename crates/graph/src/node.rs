//! Node identifiers.
//!
//! Nodes are dense `u32` indices (`0..n`). A newtype keeps them from being
//! confused with other integers (step counts, degrees, query budgets) at the
//! type level while staying `Copy` and 4 bytes wide, which matters because
//! adjacency lists for the surrogate Google-Plus graph hold millions of them.

use std::fmt;

/// A node (user) of the social graph, identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Builds a node id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32` (graphs in this workspace are
    /// bounded well below 4 billion nodes).
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index overflows u32");
        NodeId(index as u32)
    }

    /// Returns the node id as a `usize` index suitable for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42usize), n);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn display_and_debug() {
        let n = NodeId(7);
        assert_eq!(format!("{n}"), "7");
        assert_eq!(format!("{n:?}"), "n7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }

    #[test]
    fn is_small() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
    }
}
