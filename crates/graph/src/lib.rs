//! # wnw-graph
//!
//! Graph substrate for the reproduction of *"Walk, Not Wait: Faster Sampling
//! Over Online Social Networks"* (Nazi et al., VLDB 2015).
//!
//! The paper models an online social network as an undirected graph
//! `G⟨V, E⟩` that can only be explored through local-neighborhood queries.
//! This crate provides everything the rest of the workspace needs to *stand
//! in* for such a network:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) undirected graph with
//!   O(1) degree lookup and contiguous neighbor slices,
//! * [`GraphBuilder`] — an edge-list accumulator that deduplicates parallel
//!   edges and self-loops,
//! * [`generators`] — the theoretical graph models used in the paper's case
//!   studies (cycle, hypercube, barbell, balanced tree, Barabási–Albert, …)
//!   and surrogate online-social-network generators standing in for the
//!   Google Plus / Yelp / Twitter crawls,
//! * [`metrics`] — exact ground-truth graph measures (degrees, diameter,
//!   local clustering coefficient, shortest-path lengths, components) used to
//!   compute the relative error of sample-based estimates,
//! * [`attributes`] — per-node attribute storage (e.g. "stars",
//!   "self-description length") used by the aggregate-estimation experiments,
//! * [`io`] — plain-text edge-list and snapshot formats for manual dataset
//!   handling.
//!
//! # Quick example
//!
//! ```
//! use wnw_graph::generators::classic::cycle;
//! use wnw_graph::metrics;
//!
//! let g = cycle(8);
//! assert_eq!(g.node_count(), 8);
//! assert_eq!(g.edge_count(), 8);
//! assert_eq!(metrics::exact_diameter(&g), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod builder;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod node;

pub use attributes::{AttributeTable, NodeAttributes};
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::Graph;
pub use node::NodeId;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
