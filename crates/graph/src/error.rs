//! Error type shared by the graph substrate.

use std::fmt;
use std::io;

/// Errors produced by graph construction, generation, and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// A node id referenced an index outside `0..node_count`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A generator was asked for a graph it cannot produce
    /// (e.g. a Barabási–Albert graph with `m >= n`).
    InvalidGeneratorParameters(String),
    /// An attribute was requested that has not been registered.
    UnknownAttribute(String),
    /// The number of attribute values does not match the number of nodes.
    AttributeLengthMismatch {
        /// Name of the attribute being attached.
        name: String,
        /// Number of values supplied.
        values: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A parse error while reading an edge list or snapshot.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::InvalidGeneratorParameters(msg) => {
                write!(f, "invalid generator parameters: {msg}")
            }
            GraphError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            GraphError::AttributeLengthMismatch {
                name,
                values,
                nodes,
            } => write!(
                f,
                "attribute `{name}` has {values} values but the graph has {nodes} nodes"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 10,
            node_count: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));

        let e = GraphError::InvalidGeneratorParameters("m must be < n".into());
        assert!(e.to_string().contains("m must be < n"));

        let e = GraphError::UnknownAttribute("stars".into());
        assert!(e.to_string().contains("stars"));

        let e = GraphError::AttributeLengthMismatch {
            name: "stars".into(),
            values: 3,
            nodes: 4,
        };
        assert!(e.to_string().contains("stars"));

        let e = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(e.to_string().contains("missing"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
