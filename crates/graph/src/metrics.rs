//! Exact graph measures used as experiment ground truth.
//!
//! The paper measures sample bias indirectly as the relative error of AVG
//! aggregates (Section 2.4 / 7.1): average degree, average shortest-path
//! length, average local clustering coefficient, and averages of node
//! attributes. This module computes the exact population values of the
//! topological measures, plus diameters, BFS distances and connected
//! components needed by generators, the WALK length policy and the
//! initial-crawling heuristic.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Distance value for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS. Returns one distance per node; unreachable nodes get
/// [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    if !g.contains(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes within `h` hops of `source` (inclusive of `source` itself), together
/// with their hop distance. Used by the initial-crawling heuristic.
pub fn k_hop_neighborhood(g: &Graph, source: NodeId, h: usize) -> Vec<(NodeId, u32)> {
    let mut out = Vec::new();
    if !g.contains(source) {
        return out;
    }
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    out.push((source, 0));
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du as usize >= h {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                out.push((v, du + 1));
                queue.push_back(v);
            }
        }
    }
    out
}

/// Eccentricity of `source`: the largest finite BFS distance from it.
/// Returns `None` for a graph with no nodes.
pub fn eccentricity(g: &Graph, source: NodeId) -> Option<u32> {
    if g.is_empty() {
        return None;
    }
    let dist = bfs_distances(g, source);
    dist.iter().copied().filter(|&d| d != UNREACHABLE).max()
}

/// Exact diameter by all-pairs BFS — O(|V|·(|V| + |E|)), intended for the
/// small case-study graphs (Figures 1–3, 5). Returns `None` for an empty
/// graph; for a disconnected graph the diameter of the largest component is
/// **not** what this returns — it returns the max over finite distances,
/// i.e. the largest intra-component diameter.
pub fn exact_diameter(g: &Graph) -> Option<usize> {
    if g.is_empty() {
        return None;
    }
    let mut best = 0u32;
    for v in g.nodes() {
        if let Some(e) = eccentricity(g, v) {
            best = best.max(e);
        }
    }
    Some(best as usize)
}

/// Double-sweep lower bound on the diameter: BFS from an arbitrary node, then
/// BFS again from the farthest node found. Cheap (2 BFS) and usually tight on
/// social graphs; used to pick the default WALK length (`2·D̄ + 1`) on graphs
/// too large for [`exact_diameter`].
pub fn double_sweep_diameter_estimate(g: &Graph, seed: u64) -> Option<usize> {
    if g.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes: Vec<NodeId> = g.nodes().collect();
    let start = *nodes.choose(&mut rng)?;
    let d1 = bfs_distances(g, start);
    let far = d1
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| NodeId::new(i))?;
    let d2 = bfs_distances(g, far);
    d2.iter()
        .copied()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .map(|d| d as usize)
}

/// Number of connected components.
pub fn connected_components(g: &Graph) -> usize {
    component_labels(g).1
}

/// Per-node component label plus the number of components.
pub fn component_labels(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for s in g.nodes() {
        if label[s.index()] != u32::MAX {
            continue;
        }
        label[s.index()] = count;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v.index()] == u32::MAX {
                    label[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Extracts the largest connected component as a new graph with dense node
/// ids, carrying all node attributes over to the remapped ids.
pub fn largest_connected_component(g: &Graph) -> Graph {
    if g.is_empty() {
        return GraphBuilder::new().build();
    }
    let (labels, count) = component_labels(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    // Dense remapping old -> new.
    let mut remap = vec![u32::MAX; g.node_count()];
    let mut kept: Vec<NodeId> = Vec::new();
    for v in g.nodes() {
        if labels[v.index()] == best {
            remap[v.index()] = kept.len() as u32;
            kept.push(v);
        }
    }
    let mut b = GraphBuilder::with_capacity(kept.len(), g.edge_count());
    b.ensure_nodes(kept.len());
    for (u, v) in g.edges() {
        if labels[u.index()] == best && labels[v.index()] == best {
            b.add_edge(remap[u.index()], remap[v.index()]);
        }
    }
    let mut out = b.build();
    // Carry attributes across the remapping.
    let names: Vec<String> = g.attributes().names().map(|s| s.to_string()).collect();
    for name in names {
        if let Some(col) = g.attributes().column(&name) {
            let values: Vec<f64> = kept.iter().map(|&v| col.value(v)).collect();
            out.set_attribute(&name, values)
                .expect("kept length matches new node count");
        }
    }
    out
}

/// Local clustering coefficient of node `v`: the fraction of pairs of
/// neighbors of `v` that are themselves connected. Defined as 0 for nodes of
/// degree < 2.
pub fn local_clustering_coefficient(g: &Graph, v: NodeId) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[(i + 1)..] {
            if g.has_edge(a, b) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d * (d - 1)) as f64
}

/// Exact average of the local clustering coefficient over all nodes.
pub fn average_local_clustering(g: &Graph) -> f64 {
    if g.is_empty() {
        return 0.0;
    }
    g.nodes()
        .map(|v| local_clustering_coefficient(g, v))
        .sum::<f64>()
        / g.node_count() as f64
}

/// Exact average shortest-path length over all connected ordered pairs,
/// via all-pairs BFS. O(|V|·(|V| + |E|)) — use [`sampled_average_shortest_path`]
/// for large graphs.
pub fn average_shortest_path(g: &Graph) -> f64 {
    let mut total = 0u64;
    let mut pairs = 0u64;
    for v in g.nodes() {
        let dist = bfs_distances(g, v);
        for (u, &d) in dist.iter().enumerate() {
            if d != UNREACHABLE && u != v.index() {
                total += d as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

/// Average shortest-path length estimated from `sources` BFS runs from
/// uniformly chosen source nodes. This is the ground-truth computation used
/// for the larger surrogate datasets (the paper likewise reports AVG shortest
/// path on graphs far too large for all-pairs BFS).
pub fn sampled_average_shortest_path(g: &Graph, sources: usize, seed: u64) -> f64 {
    if g.is_empty() || sources == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.shuffle(&mut rng);
    let mut total = 0u64;
    let mut pairs = 0u64;
    for &s in nodes.iter().take(sources.min(nodes.len())) {
        let dist = bfs_distances(g, s);
        for (u, &d) in dist.iter().enumerate() {
            if d != UNREACHABLE && u != s.index() {
                total += d as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

/// Exact degree histogram: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{balanced_binary_tree, barbell, complete, cycle, path, star};
    use crate::generators::random::barabasi_albert;

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_nodes() {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(4);
        b.add_edge(0u32, 1u32);
        let g = b.build();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn k_hop_neighborhood_counts() {
        let g = cycle(10);
        let hood = k_hop_neighborhood(&g, NodeId(0), 2);
        // 0 plus two nodes at hop 1 plus two at hop 2.
        assert_eq!(hood.len(), 5);
        assert!(hood.iter().all(|&(_, d)| d <= 2));
    }

    #[test]
    fn diameters_of_known_graphs() {
        assert_eq!(exact_diameter(&cycle(31)), Some(15));
        assert_eq!(exact_diameter(&complete(10)), Some(1));
        assert_eq!(exact_diameter(&star(20)), Some(2));
        let barbell_d = exact_diameter(&barbell(31)).unwrap();
        assert!((3..=4).contains(&barbell_d));
        assert_eq!(exact_diameter(&balanced_binary_tree(4)), Some(8));
    }

    #[test]
    fn double_sweep_matches_exact_on_paths_and_cycles() {
        let p = path(40);
        assert_eq!(double_sweep_diameter_estimate(&p, 1), Some(39));
        let c = cycle(30);
        let est = double_sweep_diameter_estimate(&c, 1).unwrap();
        assert!((15 - 1..=15).contains(&est), "estimate {est}");
    }

    #[test]
    fn component_counting() {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(6);
        b.add_edge(0u32, 1u32)
            .add_edge(1u32, 2u32)
            .add_edge(3u32, 4u32);
        let g = b.build();
        assert_eq!(connected_components(&g), 3); // {0,1,2}, {3,4}, {5}
    }

    #[test]
    fn largest_component_extraction_remaps_attributes() {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(6);
        b.add_edge(0u32, 1u32)
            .add_edge(1u32, 2u32)
            .add_edge(3u32, 4u32);
        let mut g = b.build();
        g.set_attribute("x", vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0])
            .unwrap();
        let lcc = largest_connected_component(&g);
        assert_eq!(lcc.node_count(), 3);
        assert_eq!(lcc.edge_count(), 2);
        let col = lcc.attributes().column("x").unwrap();
        let mut vals = col.as_slice().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![10.0, 11.0, 12.0]);
    }

    #[test]
    fn clustering_coefficients() {
        let k4 = complete(4);
        assert!((average_local_clustering(&k4) - 1.0).abs() < 1e-12);
        let s = star(5);
        assert_eq!(average_local_clustering(&s), 0.0);
        let t = {
            // Triangle plus a pendant on node 0.
            let mut b = GraphBuilder::new();
            b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (0, 3)]);
            b.build()
        };
        assert!((local_clustering_coefficient(&t, NodeId(1)) - 1.0).abs() < 1e-12);
        // Node 0 has neighbors {1, 2, 3}; only the pair (1,2) is linked.
        assert!((local_clustering_coefficient(&t, NodeId(0)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering_coefficient(&t, NodeId(3)), 0.0);
    }

    #[test]
    fn average_shortest_path_on_path_graph() {
        // P_3 distances: (0,1)=1 (0,2)=2 (1,2)=1 (+symmetric) => mean 4/3.
        let g = path(3);
        assert!((average_shortest_path(&g) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_average_shortest_path_close_to_exact() {
        let g = barabasi_albert(300, 3, 5).unwrap();
        let exact = average_shortest_path(&g);
        let approx = sampled_average_shortest_path(&g, 60, 7);
        assert!(
            (exact - approx).abs() / exact < 0.1,
            "exact {exact} approx {approx}"
        );
    }

    #[test]
    fn degree_histogram_sums_to_node_count() {
        let g = barabasi_albert(200, 3, 2).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.node_count());
        assert_eq!(hist.len(), g.max_degree() + 1);
    }

    #[test]
    fn empty_graph_metrics_are_degenerate() {
        let g = GraphBuilder::new().build();
        assert_eq!(exact_diameter(&g), None);
        assert_eq!(double_sweep_diameter_estimate(&g, 1), None);
        assert_eq!(average_local_clustering(&g), 0.0);
        assert_eq!(average_shortest_path(&g), 0.0);
        assert_eq!(connected_components(&g), 0);
        assert_eq!(largest_connected_component(&g).node_count(), 0);
    }

    use crate::builder::GraphBuilder;
}
