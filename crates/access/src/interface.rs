//! The local-neighborhood query interface.
//!
//! This trait is the *only* way samplers in this workspace observe the social
//! network — mirroring the restrictive web interface of Section 2.1. Every
//! method that touches the server is fallible, so budget exhaustion and rate
//! limits propagate naturally through the samplers.

use crate::counter::QueryStats;
use crate::Result;
use wnw_graph::NodeId;

/// A social network reachable only through local-neighborhood queries.
///
/// Implementations are expected to be cheap to share by reference: samplers
/// take `&N where N: SocialNetwork + ?Sized`, and interior mutability handles
/// query accounting.
pub trait SocialNetwork {
    /// Returns the neighbor list `N(v)` of node `v`, charging the query cost
    /// if `v` has not been fetched before.
    fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>>;

    /// Returns the degree `|N(v)|`, charging the same cost as
    /// [`neighbors`](Self::neighbors) (the interface returns the full list;
    /// degree is just its length).
    fn degree(&self, v: NodeId) -> Result<usize> {
        Ok(self.neighbors(v)?.len())
    }

    /// Reads a numeric attribute of a node the caller has sampled (e.g. its
    /// star rating or self-description word count). Attribute reads target a
    /// profile page already retrieved and are not charged as extra queries.
    fn attribute(&self, name: &str, v: NodeId) -> Result<f64>;

    /// A starting node for walks. Real crawlers bootstrap from a known
    /// account; the simulator returns a fixed, valid node.
    fn seed_node(&self) -> NodeId;

    /// Query-cost counters accumulated so far.
    fn query_stats(&self) -> QueryStats;

    /// The paper's query-cost measure: unique nodes accessed so far.
    fn query_cost(&self) -> u64 {
        self.query_stats().unique_nodes
    }

    /// Resets the query counters (used between repetitions of an experiment).
    fn reset_counters(&self);

    /// Number of users, if the implementation happens to know it.
    ///
    /// Only ground-truth computations use this; the samplers themselves never
    /// do (the paper's third party does not know `|V|`).
    fn node_count_hint(&self) -> Option<usize> {
        None
    }
}

/// A [`SocialNetwork`] that can be shared across walker threads.
///
/// This is a pure marker: the sampling engine takes `N: ThreadedNetwork`
/// where a worker pool fans out over one shared handle, making the
/// `Send + Sync` requirement part of the access contract instead of a bound
/// scattered across the engine. Every `SocialNetwork` whose type is already
/// `Send + Sync` (e.g. [`SimulatedOsn`](crate::SimulatedOsn), or a
/// [`CachedNetwork`](crate::CachedNetwork) over one) gets it for free via the
/// blanket implementation.
pub trait ThreadedNetwork: SocialNetwork + Send + Sync {}

impl<N: SocialNetwork + Send + Sync + ?Sized> ThreadedNetwork for N {}

/// Blanket implementation so `&N` works wherever `N: SocialNetwork` does.
impl<N: SocialNetwork + ?Sized> SocialNetwork for &N {
    fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>> {
        (**self).neighbors(v)
    }
    fn degree(&self, v: NodeId) -> Result<usize> {
        (**self).degree(v)
    }
    fn attribute(&self, name: &str, v: NodeId) -> Result<f64> {
        (**self).attribute(name, v)
    }
    fn seed_node(&self) -> NodeId {
        (**self).seed_node()
    }
    fn query_stats(&self) -> QueryStats {
        (**self).query_stats()
    }
    fn reset_counters(&self) {
        (**self).reset_counters()
    }
    fn node_count_hint(&self) -> Option<usize> {
        (**self).node_count_hint()
    }
}

/// Blanket implementation so `Arc<N>` works wherever `N: SocialNetwork`
/// does — the natural shape for handles shared by walker threads.
impl<N: SocialNetwork + ?Sized> SocialNetwork for std::sync::Arc<N> {
    fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>> {
        (**self).neighbors(v)
    }
    fn degree(&self, v: NodeId) -> Result<usize> {
        (**self).degree(v)
    }
    fn attribute(&self, name: &str, v: NodeId) -> Result<f64> {
        (**self).attribute(name, v)
    }
    fn seed_node(&self) -> NodeId {
        (**self).seed_node()
    }
    fn query_stats(&self) -> QueryStats {
        (**self).query_stats()
    }
    fn reset_counters(&self) {
        (**self).reset_counters()
    }
    fn node_count_hint(&self) -> Option<usize> {
        (**self).node_count_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulated::SimulatedOsn;
    use wnw_graph::generators::classic::cycle;

    fn assert_threaded<N: ThreadedNetwork>(_n: &N) {}

    #[test]
    fn arc_impl_delegates_and_is_threaded() {
        let osn = std::sync::Arc::new(SimulatedOsn::new(cycle(5)));
        assert_eq!(osn.degree(NodeId(0)).unwrap(), 2);
        assert_eq!(osn.query_cost(), 1);
        assert_eq!(osn.node_count_hint(), Some(5));
        assert_threaded(&osn);
        osn.reset_counters();
        assert_eq!(osn.query_cost(), 0);
    }

    #[test]
    fn blanket_ref_impl_delegates() {
        let osn = SimulatedOsn::new(cycle(5));
        let by_ref: &dyn SocialNetwork = &osn;
        assert_eq!(by_ref.degree(NodeId(0)).unwrap(), 2);
        assert_eq!(osn.query_cost(), 1);
        assert_eq!(by_ref.node_count_hint(), Some(5));
        by_ref.reset_counters();
        assert_eq!(by_ref.query_cost(), 0);
    }
}
