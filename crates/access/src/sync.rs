//! Poison-robust locking.
//!
//! The access layer's counters and caches are monotone bookkeeping: a panic
//! in one walker thread while it holds a lock cannot leave the protected data
//! in a state that is unsafe for other threads to read (at worst a single
//! in-flight query goes unrecorded). Propagating `std::sync` poisoning would
//! instead take down every other walker sharing the network handle, so all
//! access-layer locks go through [`lock`], which recovers the guard from a
//! poisoned mutex.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquires `mutex`, recovering the guard if a previous holder panicked.
pub fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires `rwlock` for reading, recovering the guard if a writer panicked.
pub fn read<T: ?Sized>(rwlock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rwlock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires `rwlock` for writing, recovering the guard if a holder panicked.
pub fn write<T: ?Sized>(rwlock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rwlock.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
        *lock(&m) = 9;
        assert_eq!(*lock(&m), 9);
    }
}
