//! Simulated API rate limits.
//!
//! The paper motivates query-cost minimisation with services like Twitter
//! that allow only "15 API requests every 15 minutes" (Section 1.1) and notes
//! that rate limits are an orthogonal engineering concern (Section 6.3.1).
//! The simulator models them anyway so the *time* cost of a sampling run can
//! be reported alongside the query cost: a [`RateLimiter`] advances a
//! simulated clock instead of sleeping, which keeps experiments fast while
//! still exposing "how long would this crawl have taken against the real
//! API?".

use crate::sync::lock;
use std::sync::Mutex;

/// A fixed-window rate-limit policy: at most `requests_per_window` calls per
/// `window_secs` of (simulated) wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitPolicy {
    /// Maximum number of API calls per window.
    pub requests_per_window: u64,
    /// Window length in seconds.
    pub window_secs: u64,
}

impl RateLimitPolicy {
    /// Twitter's follower-id endpoint at the time of the paper:
    /// 15 requests every 15 minutes.
    pub const TWITTER_FOLLOWER_IDS: RateLimitPolicy = RateLimitPolicy {
        requests_per_window: 15,
        window_secs: 15 * 60,
    };

    /// A practically unlimited policy (useful as a default).
    pub const UNLIMITED: RateLimitPolicy = RateLimitPolicy {
        requests_per_window: u64::MAX,
        window_secs: 1,
    };
}

/// Tracks simulated elapsed time under a [`RateLimitPolicy`].
///
/// Each [`RateLimiter::record_call`] consumes one request slot; when the
/// window is full the simulated clock jumps to the start of the next window.
#[derive(Debug)]
pub struct RateLimiter {
    policy: RateLimitPolicy,
    state: Mutex<LimiterState>,
}

#[derive(Debug, Default, Clone, Copy)]
struct LimiterState {
    /// Simulated seconds since the crawl started.
    now_secs: u64,
    /// Start of the current window.
    window_start: u64,
    /// Calls already made in the current window.
    calls_in_window: u64,
    /// Total simulated seconds spent *waiting* on rate limits.
    waited_secs: u64,
    /// Total calls recorded.
    total_calls: u64,
}

impl RateLimiter {
    /// Creates a limiter with the given policy, starting at simulated time 0.
    pub fn new(policy: RateLimitPolicy) -> Self {
        RateLimiter {
            policy,
            state: Mutex::new(LimiterState::default()),
        }
    }

    /// Records one API call, advancing the simulated clock if the window is
    /// exhausted. Returns the number of seconds "waited" by this call.
    pub fn record_call(&self) -> u64 {
        let mut s = lock(&self.state);
        s.total_calls += 1;
        if self.policy.requests_per_window == u64::MAX {
            return 0;
        }
        if s.calls_in_window >= self.policy.requests_per_window {
            // Jump to the next window.
            let next_window = s.window_start + self.policy.window_secs;
            let wait = next_window.saturating_sub(s.now_secs);
            s.now_secs = next_window;
            s.window_start = next_window;
            s.calls_in_window = 0;
            s.waited_secs += wait;
            s.calls_in_window += 1;
            wait
        } else {
            s.calls_in_window += 1;
            0
        }
    }

    /// Total simulated time elapsed, in seconds.
    pub fn elapsed_secs(&self) -> u64 {
        lock(&self.state).now_secs
    }

    /// Total simulated time spent waiting on the limiter, in seconds.
    pub fn waited_secs(&self) -> u64 {
        lock(&self.state).waited_secs
    }

    /// Total calls recorded.
    pub fn total_calls(&self) -> u64 {
        lock(&self.state).total_calls
    }

    /// The configured policy.
    pub fn policy(&self) -> RateLimitPolicy {
        self.policy
    }

    /// Resets the simulated clock and counters.
    pub fn reset(&self) {
        *lock(&self.state) = LimiterState::default();
    }
}

impl Default for RateLimiter {
    fn default() -> Self {
        RateLimiter::new(RateLimitPolicy::UNLIMITED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_policy_never_waits() {
        let rl = RateLimiter::default();
        for _ in 0..1000 {
            assert_eq!(rl.record_call(), 0);
        }
        assert_eq!(rl.waited_secs(), 0);
        assert_eq!(rl.total_calls(), 1000);
    }

    #[test]
    fn twitter_policy_waits_once_per_window() {
        let rl = RateLimiter::new(RateLimitPolicy::TWITTER_FOLLOWER_IDS);
        // First 15 calls are free.
        for _ in 0..15 {
            assert_eq!(rl.record_call(), 0);
        }
        // The 16th call rolls into the next window: 900 seconds of waiting.
        assert_eq!(rl.record_call(), 900);
        assert_eq!(rl.elapsed_secs(), 900);
        assert_eq!(rl.waited_secs(), 900);
        // 14 more calls fit in that window before waiting again.
        for _ in 0..14 {
            assert_eq!(rl.record_call(), 0);
        }
        assert_eq!(rl.record_call(), 900);
        assert_eq!(rl.elapsed_secs(), 1800);
    }

    #[test]
    fn reset_restores_initial_state() {
        let rl = RateLimiter::new(RateLimitPolicy {
            requests_per_window: 1,
            window_secs: 10,
        });
        rl.record_call();
        rl.record_call();
        assert!(rl.elapsed_secs() > 0);
        rl.reset();
        assert_eq!(rl.elapsed_secs(), 0);
        assert_eq!(rl.total_calls(), 0);
    }
}
