//! Simulated API rate limits.
//!
//! The paper motivates query-cost minimisation with services like Twitter
//! that allow only "15 API requests every 15 minutes" (Section 1.1) and notes
//! that rate limits are an orthogonal engineering concern (Section 6.3.1).
//! The simulator models them anyway so the *time* cost of a sampling run can
//! be reported alongside the query cost: a [`RateLimiter`] advances a
//! simulated clock instead of sleeping, which keeps experiments fast while
//! still exposing "how long would this crawl have taken against the real
//! API?".

use crate::error::AccessError;
use crate::sync::lock;
use std::sync::Mutex;

/// A fixed-window rate-limit policy: at most `requests_per_window` calls per
/// `window_secs` of (simulated) wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitPolicy {
    /// Maximum number of API calls per window.
    pub requests_per_window: u64,
    /// Window length in seconds.
    pub window_secs: u64,
}

impl RateLimitPolicy {
    /// Twitter's follower-id endpoint at the time of the paper:
    /// 15 requests every 15 minutes.
    pub const TWITTER_FOLLOWER_IDS: RateLimitPolicy = RateLimitPolicy {
        requests_per_window: 15,
        window_secs: 15 * 60,
    };

    /// A practically unlimited policy (useful as a default).
    pub const UNLIMITED: RateLimitPolicy = RateLimitPolicy {
        requests_per_window: u64::MAX,
        window_secs: 1,
    };
}

/// How a [`RateLimiter`] reacts when the window is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateLimitMode {
    /// The call silently "waits": the simulated clock jumps to the next
    /// window and the call proceeds. Experiments use this to report how
    /// long a crawl *would* have taken.
    #[default]
    Accounting,
    /// The call is rejected with
    /// [`AccessError::RateLimited`] carrying the
    /// `retry_after_secs` a real `429` response would — the caller (a
    /// [`ResilientNetwork`](crate::ResilientNetwork)) is expected to honor
    /// it and retry.
    Reject,
}

/// Tracks simulated elapsed time under a [`RateLimitPolicy`].
///
/// Each [`RateLimiter::record_call`] consumes one request slot; when the
/// window is full the simulated clock jumps to the start of the next window.
/// A limiter in [`RateLimitMode::Reject`] instead answers a full window
/// through [`acquire`](RateLimiter::acquire) with
/// [`AccessError::RateLimited`].
#[derive(Debug)]
pub struct RateLimiter {
    policy: RateLimitPolicy,
    mode: RateLimitMode,
    state: Mutex<LimiterState>,
}

#[derive(Debug, Default, Clone, Copy)]
struct LimiterState {
    /// Simulated seconds since the crawl started.
    now_secs: u64,
    /// Start of the current window.
    window_start: u64,
    /// Calls already made in the current window.
    calls_in_window: u64,
    /// Total simulated seconds spent *waiting* on rate limits.
    waited_secs: u64,
    /// Total calls recorded.
    total_calls: u64,
    /// Calls rejected (reject mode only).
    rejections: u64,
}

impl RateLimiter {
    /// Creates a limiter with the given policy, starting at simulated time 0.
    pub fn new(policy: RateLimitPolicy) -> Self {
        RateLimiter {
            policy,
            mode: RateLimitMode::Accounting,
            state: Mutex::new(LimiterState::default()),
        }
    }

    /// Creates a limiter that rejects over-limit calls with
    /// [`AccessError::RateLimited`] instead of silently accounting the wait.
    pub fn rejecting(policy: RateLimitPolicy) -> Self {
        RateLimiter {
            policy,
            mode: RateLimitMode::Reject,
            state: Mutex::new(LimiterState::default()),
        }
    }

    /// How this limiter reacts to a full window.
    pub fn mode(&self) -> RateLimitMode {
        self.mode
    }

    /// Acquires one request slot.
    ///
    /// In [`RateLimitMode::Accounting`] this is exactly
    /// [`record_call`](Self::record_call) (the returned value is the wait
    /// absorbed into the simulated clock). In [`RateLimitMode::Reject`] a
    /// full window yields `Err(AccessError::RateLimited { retry_after_secs })`
    /// — and, mirroring a client that honors the `Retry-After` header before
    /// its next attempt, the simulated clock jumps to the next window so a
    /// retry made *after* the rejection finds a fresh window.
    pub fn acquire(&self) -> crate::Result<u64> {
        match self.mode {
            RateLimitMode::Accounting => Ok(self.record_call()),
            RateLimitMode::Reject => {
                let mut s = lock(&self.state);
                if self.policy.requests_per_window == u64::MAX {
                    s.total_calls += 1;
                    return Ok(0);
                }
                if s.calls_in_window >= self.policy.requests_per_window {
                    // Reject, then roll the clock to the next window: the
                    // retry-after contract is "wait this long and the window
                    // will be fresh", and the simulated clock models the
                    // caller doing exactly that.
                    let next_window = s.window_start + self.policy.window_secs;
                    let wait = next_window.saturating_sub(s.now_secs).max(1);
                    s.rejections += 1;
                    s.now_secs = next_window;
                    s.window_start = next_window;
                    s.calls_in_window = 0;
                    s.waited_secs += wait;
                    return Err(AccessError::RateLimited {
                        retry_after_secs: wait,
                    });
                }
                s.total_calls += 1;
                s.calls_in_window += 1;
                Ok(0)
            }
        }
    }

    /// Calls rejected so far (reject mode only; always 0 in accounting
    /// mode).
    pub fn rejections(&self) -> u64 {
        lock(&self.state).rejections
    }

    /// Records one API call, advancing the simulated clock if the window is
    /// exhausted. Returns the number of seconds "waited" by this call.
    pub fn record_call(&self) -> u64 {
        let mut s = lock(&self.state);
        s.total_calls += 1;
        if self.policy.requests_per_window == u64::MAX {
            return 0;
        }
        if s.calls_in_window >= self.policy.requests_per_window {
            // Jump to the next window.
            let next_window = s.window_start + self.policy.window_secs;
            let wait = next_window.saturating_sub(s.now_secs);
            s.now_secs = next_window;
            s.window_start = next_window;
            s.calls_in_window = 0;
            s.waited_secs += wait;
            s.calls_in_window += 1;
            wait
        } else {
            s.calls_in_window += 1;
            0
        }
    }

    /// Total simulated time elapsed, in seconds.
    pub fn elapsed_secs(&self) -> u64 {
        lock(&self.state).now_secs
    }

    /// Total simulated time spent waiting on the limiter, in seconds.
    pub fn waited_secs(&self) -> u64 {
        lock(&self.state).waited_secs
    }

    /// Total calls recorded.
    pub fn total_calls(&self) -> u64 {
        lock(&self.state).total_calls
    }

    /// The configured policy.
    pub fn policy(&self) -> RateLimitPolicy {
        self.policy
    }

    /// Resets the simulated clock and counters.
    pub fn reset(&self) {
        *lock(&self.state) = LimiterState::default();
    }
}

impl Default for RateLimiter {
    fn default() -> Self {
        RateLimiter::new(RateLimitPolicy::UNLIMITED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_policy_never_waits() {
        let rl = RateLimiter::default();
        for _ in 0..1000 {
            assert_eq!(rl.record_call(), 0);
        }
        assert_eq!(rl.waited_secs(), 0);
        assert_eq!(rl.total_calls(), 1000);
    }

    #[test]
    fn twitter_policy_waits_once_per_window() {
        let rl = RateLimiter::new(RateLimitPolicy::TWITTER_FOLLOWER_IDS);
        // First 15 calls are free.
        for _ in 0..15 {
            assert_eq!(rl.record_call(), 0);
        }
        // The 16th call rolls into the next window: 900 seconds of waiting.
        assert_eq!(rl.record_call(), 900);
        assert_eq!(rl.elapsed_secs(), 900);
        assert_eq!(rl.waited_secs(), 900);
        // 14 more calls fit in that window before waiting again.
        for _ in 0..14 {
            assert_eq!(rl.record_call(), 0);
        }
        assert_eq!(rl.record_call(), 900);
        assert_eq!(rl.elapsed_secs(), 1800);
    }

    #[test]
    fn reject_mode_surfaces_retry_after_and_rolls_the_window() {
        let rl = RateLimiter::rejecting(RateLimitPolicy {
            requests_per_window: 2,
            window_secs: 60,
        });
        assert_eq!(rl.mode(), RateLimitMode::Reject);
        assert_eq!(rl.acquire().unwrap(), 0);
        assert_eq!(rl.acquire().unwrap(), 0);
        // Third call in the window: rejected with the full window's wait.
        assert_eq!(
            rl.acquire().unwrap_err(),
            AccessError::RateLimited {
                retry_after_secs: 60
            }
        );
        assert_eq!(rl.rejections(), 1);
        assert_eq!(rl.total_calls(), 2, "rejected calls consume no slot");
        // The rejection rolled the clock, so the honored retry succeeds.
        assert_eq!(rl.acquire().unwrap(), 0);
        assert_eq!(rl.elapsed_secs(), 60);
        assert_eq!(rl.waited_secs(), 60);
    }

    #[test]
    fn reject_mode_unlimited_never_rejects() {
        let rl = RateLimiter::rejecting(RateLimitPolicy::UNLIMITED);
        for _ in 0..100 {
            assert_eq!(rl.acquire().unwrap(), 0);
        }
        assert_eq!(rl.rejections(), 0);
    }

    #[test]
    fn accounting_mode_acquire_matches_record_call() {
        let rl = RateLimiter::new(RateLimitPolicy::TWITTER_FOLLOWER_IDS);
        for _ in 0..15 {
            assert_eq!(rl.acquire().unwrap(), 0);
        }
        assert_eq!(rl.acquire().unwrap(), 900);
        assert_eq!(rl.rejections(), 0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let rl = RateLimiter::new(RateLimitPolicy {
            requests_per_window: 1,
            window_secs: 10,
        });
        rl.record_call();
        rl.record_call();
        assert!(rl.elapsed_secs() > 0);
        rl.reset();
        assert_eq!(rl.elapsed_secs(), 0);
        assert_eq!(rl.total_calls(), 0);
    }
}
