//! Bounded retries, backoff, and circuit breaking over any
//! [`SocialNetwork`].
//!
//! [`ResilientNetwork`] is the policy layer between a sampler and a flaky
//! backend (a live crawler, or a [`FaultyNetwork`](crate::FaultyNetwork)
//! testbed). It retries [retryable](crate::AccessError::is_retryable)
//! failures up to a bounded cap with decorrelated-jitter exponential
//! backoff, honors the `retry_after_secs` carried by
//! [`AccessError::RateLimited`], and fails fast through a per-backend
//! circuit breaker once the backend looks dead. All waiting happens on a
//! **simulated clock** (an atomic seconds counter), the same idiom as
//! [`RateLimiter`](crate::RateLimiter) — experiments stay fast while still
//! reporting how long the crawl would have waited for real.
//!
//! Exhausted retries and open-breaker fast-fails surface as
//! [`AccessError::Unavailable`], which the engine treats like budget
//! exhaustion for the failing walker: the job degrades to a partial result
//! instead of dying. Every decision is counted in [`ResilienceStats`]; a
//! cloneable [`ResilienceMonitor`] hands the live counters to the service
//! layer for `/v1/metrics`, Prometheus, and the degraded `/healthz`.

use crate::counter::QueryStats;
use crate::error::{AccessError, UnavailableReason};
use crate::interface::SocialNetwork;
use crate::sync::lock;
use crate::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use wnw_graph::NodeId;
use wnw_telemetry::{Histogram, HistogramSnapshot};

/// SplitMix64, for deterministic backoff jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Retry, backoff, and circuit-breaker knobs for a [`ResilientNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per original call (so attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// First backoff wait, in simulated seconds.
    pub base_backoff_secs: u64,
    /// Backoff cap, in simulated seconds.
    pub max_backoff_secs: u64,
    /// Consecutive attempt-level failures that open the breaker.
    pub breaker_threshold: u32,
    /// Simulated seconds the breaker stays open before a half-open probe.
    pub breaker_cooldown_secs: u64,
}

impl RetryPolicy {
    /// Three retries, 1 s → 60 s decorrelated-jitter backoff, breaker
    /// opening after 8 consecutive failures with a 120 s cooldown.
    pub const DEFAULT: RetryPolicy = RetryPolicy {
        max_retries: 3,
        base_backoff_secs: 1,
        max_backoff_secs: 60,
        breaker_threshold: 8,
        breaker_cooldown_secs: 120,
    };

    /// A policy whose breaker never opens — useful when a test needs
    /// retry behaviour isolated from breaker state (which is
    /// interleaving-dependent by nature).
    pub fn without_breaker(mut self) -> RetryPolicy {
        self.breaker_threshold = u32::MAX;
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::DEFAULT
    }
}

/// The circuit-breaker state machine: closed → open (after N consecutive
/// failures) → half-open probe → closed on success, re-open on failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { since_secs: u64 },
    HalfOpen,
}

/// A snapshot of every resilience counter. `Eq` so byte-identity tests can
/// compare whole blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceStats {
    /// Top-level calls that entered the policy layer.
    pub calls: u64,
    /// Retryable errors observed from the wrapped network.
    pub faults_seen: u64,
    /// Retry attempts issued (bounded by `max_retries` per call).
    pub retries: u64,
    /// Simulated seconds spent in backoff waits.
    pub backoff_wait_secs: u64,
    /// Rate-limit `retry_after_secs` hints honored.
    pub rate_limit_honored: u64,
    /// Calls that exhausted the retry cap and degraded.
    pub retries_exhausted: u64,
    /// Calls that succeeded only after at least one retry.
    pub recovered: u64,
    /// Closed → open breaker transitions.
    pub breaker_opened: u64,
    /// Open → half-open probe transitions.
    pub breaker_half_open_probes: u64,
    /// Calls failed fast because the breaker was open.
    pub breaker_fast_fails: u64,
    /// Whether the breaker is open right now.
    pub breaker_open: bool,
    /// The simulated clock, in seconds (calls + backoff + honored waits).
    pub clock_secs: u64,
    /// Distribution of retries per top-level call.
    pub retries_per_call: HistogramSnapshot,
}

/// The shared state behind a [`ResilientNetwork`] and every
/// [`ResilienceMonitor`] cloned from it.
#[derive(Debug)]
struct ResilienceShared {
    policy: RetryPolicy,
    seed: u64,
    /// Simulated seconds: 1 per attempt, plus every backoff or honored wait.
    clock_secs: AtomicU64,
    calls: AtomicU64,
    faults_seen: AtomicU64,
    retries: AtomicU64,
    backoff_wait_secs: AtomicU64,
    rate_limit_honored: AtomicU64,
    retries_exhausted: AtomicU64,
    recovered: AtomicU64,
    breaker_opened: AtomicU64,
    breaker_half_open_probes: AtomicU64,
    breaker_fast_fails: AtomicU64,
    retries_per_call: Histogram,
    breaker: Mutex<BreakerState>,
}

impl ResilienceShared {
    fn new(policy: RetryPolicy, seed: u64) -> Self {
        ResilienceShared {
            policy,
            seed,
            clock_secs: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            faults_seen: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            backoff_wait_secs: AtomicU64::new(0),
            rate_limit_honored: AtomicU64::new(0),
            retries_exhausted: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            breaker_opened: AtomicU64::new(0),
            breaker_half_open_probes: AtomicU64::new(0),
            breaker_fast_fails: AtomicU64::new(0),
            retries_per_call: Histogram::new(),
            breaker: Mutex::new(BreakerState::Closed {
                consecutive_failures: 0,
            }),
        }
    }

    fn stats(&self) -> ResilienceStats {
        ResilienceStats {
            calls: self.calls.load(Ordering::Relaxed),
            faults_seen: self.faults_seen.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            backoff_wait_secs: self.backoff_wait_secs.load(Ordering::Relaxed),
            rate_limit_honored: self.rate_limit_honored.load(Ordering::Relaxed),
            retries_exhausted: self.retries_exhausted.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            breaker_opened: self.breaker_opened.load(Ordering::Relaxed),
            breaker_half_open_probes: self.breaker_half_open_probes.load(Ordering::Relaxed),
            breaker_fast_fails: self.breaker_fast_fails.load(Ordering::Relaxed),
            breaker_open: matches!(*lock(&self.breaker), BreakerState::Open { .. }),
            clock_secs: self.clock_secs.load(Ordering::Relaxed),
            retries_per_call: self.retries_per_call.snapshot(),
        }
    }

    /// Breaker gate for a new top-level call. `Err` means fail fast.
    fn breaker_admit(&self) -> std::result::Result<(), AccessError> {
        let mut b = lock(&self.breaker);
        match *b {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open { since_secs } => {
                let now = self.clock_secs.load(Ordering::Relaxed);
                if now >= since_secs.saturating_add(self.policy.breaker_cooldown_secs) {
                    *b = BreakerState::HalfOpen;
                    self.breaker_half_open_probes
                        .fetch_add(1, Ordering::Relaxed);
                    Ok(())
                } else {
                    // A fast-failed call still costs request time; advancing
                    // the clock here is what lets the cooldown expire even
                    // when every call is being rejected at the gate.
                    self.clock_secs.fetch_add(1, Ordering::Relaxed);
                    self.breaker_fast_fails.fetch_add(1, Ordering::Relaxed);
                    Err(AccessError::Unavailable {
                        reason: UnavailableReason::CircuitOpen,
                    })
                }
            }
        }
    }

    /// Records an attempt-level success; closes the breaker.
    fn breaker_success(&self) {
        *lock(&self.breaker) = BreakerState::Closed {
            consecutive_failures: 0,
        };
    }

    /// Records an attempt-level retryable failure. Returns `true` if the
    /// breaker is (now) open, in which case the caller stops retrying.
    fn breaker_failure(&self) -> bool {
        let mut b = lock(&self.breaker);
        match *b {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= self.policy.breaker_threshold {
                    *b = BreakerState::Open {
                        since_secs: self.clock_secs.load(Ordering::Relaxed),
                    };
                    self.breaker_opened.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    *b = BreakerState::Closed {
                        consecutive_failures: failures,
                    };
                    false
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: straight back to open.
                *b = BreakerState::Open {
                    since_secs: self.clock_secs.load(Ordering::Relaxed),
                };
                self.breaker_opened.fetch_add(1, Ordering::Relaxed);
                true
            }
            BreakerState::Open { .. } => true,
        }
    }

    fn reset(&self) {
        self.clock_secs.store(0, Ordering::Relaxed);
        self.calls.store(0, Ordering::Relaxed);
        self.faults_seen.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.backoff_wait_secs.store(0, Ordering::Relaxed);
        self.rate_limit_honored.store(0, Ordering::Relaxed);
        self.retries_exhausted.store(0, Ordering::Relaxed);
        self.recovered.store(0, Ordering::Relaxed);
        self.breaker_opened.store(0, Ordering::Relaxed);
        self.breaker_half_open_probes.store(0, Ordering::Relaxed);
        self.breaker_fast_fails.store(0, Ordering::Relaxed);
        self.retries_per_call.reset();
        *lock(&self.breaker) = BreakerState::Closed {
            consecutive_failures: 0,
        };
    }
}

/// A cloneable, read-only handle onto a [`ResilientNetwork`]'s counters —
/// how the service layer watches breaker state and fault totals without
/// knowing the network's concrete type.
#[derive(Debug, Clone)]
pub struct ResilienceMonitor {
    shared: Arc<ResilienceShared>,
}

impl ResilienceMonitor {
    /// A snapshot of every resilience counter.
    pub fn stats(&self) -> ResilienceStats {
        self.shared.stats()
    }

    /// Whether the circuit breaker is currently open.
    pub fn breaker_open(&self) -> bool {
        matches!(*lock(&self.shared.breaker), BreakerState::Open { .. })
    }

    /// The configured policy.
    pub fn policy(&self) -> RetryPolicy {
        self.shared.policy
    }
}

/// The retry/backoff/breaker wrapper. Cloning shares the policy state and
/// counters (and clones the wrapped network handle alongside).
#[derive(Debug, Clone)]
pub struct ResilientNetwork<N> {
    inner: N,
    shared: Arc<ResilienceShared>,
}

impl<N: SocialNetwork> ResilientNetwork<N> {
    /// Wraps `inner` under `policy`, with `seed` driving backoff jitter.
    pub fn new(inner: N, policy: RetryPolicy, seed: u64) -> Self {
        ResilientNetwork {
            inner,
            shared: Arc::new(ResilienceShared::new(policy, seed)),
        }
    }

    /// Wraps `inner` under [`RetryPolicy::DEFAULT`].
    pub fn with_defaults(inner: N) -> Self {
        ResilientNetwork::new(inner, RetryPolicy::DEFAULT, 0)
    }

    /// A cloneable monitor handle for the service layer.
    pub fn monitor(&self) -> ResilienceMonitor {
        ResilienceMonitor {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A snapshot of every resilience counter.
    pub fn stats(&self) -> ResilienceStats {
        self.shared.stats()
    }

    /// The configured policy.
    pub fn policy(&self) -> RetryPolicy {
        self.shared.policy
    }

    /// The wrapped network.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// Decorrelated-jitter backoff (the AWS architecture-blog variant):
    /// `wait = min(cap, uniform(base, prev * 3))`, with the uniform draw
    /// derived deterministically from `(seed, node, attempt)` so a given
    /// walk retries identically under any interleaving.
    fn backoff_secs(&self, v: NodeId, attempt: u32, prev_wait: u64) -> u64 {
        let policy = self.shared.policy;
        let base = policy.base_backoff_secs.max(1);
        let upper = prev_wait.saturating_mul(3).max(base + 1);
        let mut x = splitmix64(self.shared.seed ^ 0x0BAC_0FF5);
        x = splitmix64(x ^ u64::from(v.0));
        x = splitmix64(x ^ u64::from(attempt));
        let span = upper - base;
        (base + x % (span + 1)).min(policy.max_backoff_secs.max(base))
    }

    /// The retry loop around one neighbor fetch.
    fn fetch_with_retries(&self, v: NodeId) -> Result<Vec<NodeId>> {
        let shared = &self.shared;
        let policy = shared.policy;
        shared.calls.fetch_add(1, Ordering::Relaxed);
        shared.breaker_admit()?;

        let mut prev_wait = policy.base_backoff_secs.max(1);
        let mut attempt: u32 = 0;
        loop {
            // Each attempt costs a simulated second of request time.
            shared.clock_secs.fetch_add(1, Ordering::Relaxed);
            match self.inner.neighbors(v) {
                Ok(neighbors) => {
                    shared.breaker_success();
                    shared.retries_per_call.record(u64::from(attempt));
                    if attempt > 0 {
                        shared.recovered.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(neighbors);
                }
                Err(err) if err.is_retryable() => {
                    shared.faults_seen.fetch_add(1, Ordering::Relaxed);
                    if shared.breaker_failure() {
                        shared.retries_per_call.record(u64::from(attempt));
                        return Err(AccessError::Unavailable {
                            reason: UnavailableReason::CircuitOpen,
                        });
                    }
                    if attempt >= policy.max_retries {
                        shared.retries_exhausted.fetch_add(1, Ordering::Relaxed);
                        shared.retries_per_call.record(u64::from(attempt));
                        return Err(AccessError::Unavailable {
                            reason: UnavailableReason::RetriesExhausted,
                        });
                    }
                    // Honor an explicit Retry-After; otherwise decorrelated
                    // jitter.
                    let wait = match err {
                        AccessError::RateLimited { retry_after_secs } => {
                            shared.rate_limit_honored.fetch_add(1, Ordering::Relaxed);
                            retry_after_secs.max(1)
                        }
                        _ => self.backoff_secs(v, attempt, prev_wait),
                    };
                    prev_wait = wait;
                    shared.clock_secs.fetch_add(wait, Ordering::Relaxed);
                    shared.backoff_wait_secs.fetch_add(wait, Ordering::Relaxed);
                    shared.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                }
                // Fatal (unknown node/attribute) and budget errors pass
                // through untouched — they are not backend failures and must
                // not trip the breaker.
                Err(err) => return Err(err),
            }
        }
    }
}

impl<N: SocialNetwork> SocialNetwork for ResilientNetwork<N> {
    fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>> {
        self.fetch_with_retries(v)
    }

    fn attribute(&self, name: &str, v: NodeId) -> Result<f64> {
        // Attribute reads are local parses of already-fetched pages; they
        // are not faulted and need no retry envelope.
        self.inner.attribute(name, v)
    }

    fn seed_node(&self) -> NodeId {
        self.inner.seed_node()
    }

    fn query_stats(&self) -> QueryStats {
        self.inner.query_stats()
    }

    fn reset_counters(&self) {
        self.inner.reset_counters();
        self.shared.reset();
    }

    fn node_count_hint(&self) -> Option<usize> {
        self.inner.node_count_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TransientKind;
    use crate::fault::{FaultProfile, FaultyNetwork};
    use crate::rate_limit::{RateLimitPolicy, RateLimiter};
    use crate::simulated::SimulatedOsn;
    use wnw_graph::generators::classic::cycle;
    use wnw_graph::generators::random::barabasi_albert;

    fn flaky(profile: FaultProfile, seed: u64) -> FaultyNetwork<SimulatedOsn> {
        FaultyNetwork::new(
            SimulatedOsn::new(barabasi_albert(200, 3, 7).unwrap()),
            seed,
            profile,
        )
    }

    #[test]
    fn clean_backend_passes_through_with_zero_retries() {
        let net = ResilientNetwork::with_defaults(SimulatedOsn::new(cycle(6)));
        assert_eq!(
            net.neighbors(NodeId(0)).unwrap(),
            vec![NodeId(1), NodeId(5)]
        );
        let stats = net.stats();
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.faults_seen, 0);
        assert!(!stats.breaker_open);
        assert_eq!(stats.retries_per_call.count, 1);
    }

    #[test]
    fn transient_runs_inside_the_cap_are_absorbed() {
        // Fault runs of length ≤ 2 against a 3-retry policy: every fetch
        // eventually succeeds, bounded by the cap.
        let net = ResilientNetwork::new(
            flaky(FaultProfile::chaos(), 0x5EED),
            RetryPolicy::DEFAULT.without_breaker(),
            0x5EED,
        );
        let mut degraded = 0u64;
        for v in 0..200u32 {
            match net.neighbors(NodeId(v)) {
                Ok(_) => {}
                Err(AccessError::Unavailable { .. }) => degraded += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        let stats = net.stats();
        let inj = net.inner().fault_stats();
        assert!(stats.faults_seen > 0, "chaos profile injected nothing");
        // Only blackout nodes can exhaust retries.
        let blackouts = (0..200u32)
            .filter(|v| net.inner().injector().is_blackout(NodeId(*v)))
            .count() as u64;
        assert_eq!(degraded, blackouts);
        assert_eq!(stats.retries_exhausted, blackouts);
        // No retry storm: retries ≤ max_retries per original call.
        assert!(stats.retries <= stats.calls * u64::from(net.policy().max_retries));
        assert_eq!(stats.retries_per_call.count, stats.calls);
        assert!(inj.total_injected() >= stats.faults_seen);
    }

    #[test]
    fn retry_after_is_honored_and_counted() {
        // A rejecting limiter with a tiny window: the first over-limit call
        // is rejected with Retry-After, the resilient layer honors it, and
        // the (clock-rolled) retry succeeds — the dead-letter path is gone.
        let osn = SimulatedOsn::builder(cycle(8))
            .rate_limiter(RateLimiter::rejecting(RateLimitPolicy {
                requests_per_window: 2,
                window_secs: 60,
            }))
            .build();
        let net = ResilientNetwork::new(osn, RetryPolicy::DEFAULT, 1);
        for v in 0..8u32 {
            net.neighbors(NodeId(v)).expect("retry absorbs the 429");
        }
        let stats = net.stats();
        assert!(stats.rate_limit_honored >= 2, "429s were not honored");
        assert_eq!(stats.retries_exhausted, 0);
        assert!(stats.recovered >= 2);
        // The honored waits landed on the simulated clock.
        assert!(stats.clock_secs >= 8 + 60 * stats.rate_limit_honored);
    }

    #[test]
    fn accounting_mode_needs_no_retries_at_all() {
        let osn = SimulatedOsn::builder(cycle(8))
            .rate_limiter(RateLimiter::new(RateLimitPolicy {
                requests_per_window: 2,
                window_secs: 60,
            }))
            .build();
        let net = ResilientNetwork::new(osn, RetryPolicy::DEFAULT, 1);
        for v in 0..8u32 {
            net.neighbors(NodeId(v)).unwrap();
        }
        let stats = net.stats();
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.rate_limit_honored, 0);
        assert_eq!(stats.faults_seen, 0);
    }

    #[test]
    fn blackout_node_exhausts_retries_and_degrades() {
        let profile = FaultProfile {
            blackout_fraction: 1.0,
            ..FaultProfile::OFF
        };
        let net =
            ResilientNetwork::new(flaky(profile, 3), RetryPolicy::DEFAULT.without_breaker(), 3);
        let err = net.neighbors(NodeId(0)).unwrap_err();
        assert_eq!(
            err,
            AccessError::Unavailable {
                reason: UnavailableReason::RetriesExhausted
            }
        );
        assert!(err.is_degradation() && !err.is_retryable());
        let stats = net.stats();
        assert_eq!(stats.retries, u64::from(RetryPolicy::DEFAULT.max_retries));
        assert_eq!(stats.retries_exhausted, 1);
        assert!(stats.backoff_wait_secs > 0);
    }

    #[test]
    fn breaker_opens_fast_fails_then_recovers_through_half_open() {
        let profile = FaultProfile {
            blackout_fraction: 1.0,
            ..FaultProfile::OFF
        };
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff_secs: 1,
            max_backoff_secs: 4,
            breaker_threshold: 4,
            breaker_cooldown_secs: 10,
        };
        let net = ResilientNetwork::new(flaky(profile, 3), policy, 3);
        // 4 attempts (1 call + 3 retries) = 4 consecutive failures → open.
        let err = net.neighbors(NodeId(0)).unwrap_err();
        assert_eq!(
            err,
            AccessError::Unavailable {
                reason: UnavailableReason::CircuitOpen
            }
        );
        let stats = net.stats();
        assert_eq!(stats.breaker_opened, 1);
        assert!(stats.breaker_open);
        assert!(net.monitor().breaker_open());
        // While open and inside the cooldown: fail fast, no inner calls.
        let before = net.inner().fault_stats().total_injected();
        let err = net.neighbors(NodeId(1)).unwrap_err();
        assert_eq!(
            err,
            AccessError::Unavailable {
                reason: UnavailableReason::CircuitOpen
            }
        );
        assert_eq!(net.inner().fault_stats().total_injected(), before);
        assert_eq!(net.stats().breaker_fast_fails, 1);
        // Make the backend healthy again and wear out the cooldown.
        net.inner().injector().reset();
        // (reset clears counters, not the schedule — swap to a clean run by
        // burning simulated time instead: wait out the cooldown.)
        net.shared
            .clock_secs
            .fetch_add(policy.breaker_cooldown_secs, Ordering::Relaxed);
        // The blackout schedule still fails every call, so the half-open
        // probe fails and the breaker re-opens.
        let err = net.neighbors(NodeId(2)).unwrap_err();
        assert_eq!(
            err,
            AccessError::Unavailable {
                reason: UnavailableReason::CircuitOpen
            }
        );
        let stats = net.stats();
        assert_eq!(stats.breaker_half_open_probes, 1);
        assert_eq!(stats.breaker_opened, 2);
        assert!(stats.breaker_open);
    }

    #[test]
    fn half_open_probe_success_closes_the_breaker() {
        // A fault-free inner network, but force the breaker open by hand.
        let net = ResilientNetwork::new(
            SimulatedOsn::new(cycle(6)),
            RetryPolicy {
                breaker_cooldown_secs: 5,
                ..RetryPolicy::DEFAULT
            },
            0,
        );
        *lock(&net.shared.breaker) = BreakerState::Open { since_secs: 0 };
        net.shared.clock_secs.store(10, Ordering::Relaxed);
        assert!(net.neighbors(NodeId(0)).is_ok());
        let stats = net.stats();
        assert_eq!(stats.breaker_half_open_probes, 1);
        assert!(!stats.breaker_open);
        assert!(net.neighbors(NodeId(1)).is_ok());
    }

    #[test]
    fn fatal_errors_bypass_retries_and_the_breaker() {
        let net = ResilientNetwork::with_defaults(SimulatedOsn::new(cycle(4)));
        let err = net.neighbors(NodeId(99)).unwrap_err();
        assert_eq!(err, AccessError::UnknownNode(NodeId(99)));
        let stats = net.stats();
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.faults_seen, 0);
        assert!(!stats.breaker_open);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let net = ResilientNetwork::new(SimulatedOsn::new(cycle(4)), RetryPolicy::DEFAULT, 0xABCD);
        let other =
            ResilientNetwork::new(SimulatedOsn::new(cycle(4)), RetryPolicy::DEFAULT, 0xABCD);
        let mut prev = 1;
        for attempt in 0..8 {
            let a = net.backoff_secs(NodeId(7), attempt, prev);
            let b = other.backoff_secs(NodeId(7), attempt, prev);
            assert_eq!(a, b, "same seed must give the same jitter");
            assert!((1..=RetryPolicy::DEFAULT.max_backoff_secs).contains(&a));
            prev = a;
        }
    }

    #[test]
    fn reset_counters_clears_stats_and_closes_the_breaker() {
        let profile = FaultProfile {
            transient_error: 1.0,
            max_faults_per_node: 2,
            ..FaultProfile::OFF
        };
        let net =
            ResilientNetwork::new(flaky(profile, 3), RetryPolicy::DEFAULT.without_breaker(), 3);
        net.neighbors(NodeId(0)).unwrap();
        assert!(net.stats().retries > 0);
        net.reset_counters();
        let stats = net.stats();
        assert_eq!(stats, ResilienceStats::default());
    }

    #[test]
    fn timeout_stalls_are_retried_like_any_transient() {
        let profile = FaultProfile {
            stall: 1.0,
            stall_secs: 30,
            max_faults_per_node: 1,
            ..FaultProfile::OFF
        };
        let net =
            ResilientNetwork::new(flaky(profile, 3), RetryPolicy::DEFAULT.without_breaker(), 3);
        assert!(net.neighbors(NodeId(0)).is_ok());
        let stats = net.stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(
            net.inner().fault_stats().stalls,
            1,
            "the stall was injected exactly once"
        );
        let _ = TransientKind::Flap; // taxonomy is exercised elsewhere
    }
}
