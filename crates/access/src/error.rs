//! Errors surfaced by the restricted access interface.

use std::fmt;
use wnw_graph::NodeId;

/// Errors a sampler can hit while talking to the (simulated) social network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// The node id is not a user of the network.
    UnknownNode(NodeId),
    /// The query budget configured for this session is exhausted.
    ///
    /// Experiments use this to stop samplers exactly at a query-cost grid
    /// point; callers are expected to treat it as a normal termination signal.
    BudgetExhausted {
        /// The budget that was configured.
        budget: u64,
    },
    /// The requested attribute is not exposed by the network.
    UnknownAttribute(String),
    /// The rate limiter rejected the call (only produced when the limiter is
    /// configured to reject rather than to account for waiting time).
    RateLimited {
        /// How many simulated seconds the caller would have to wait.
        retry_after_secs: u64,
    },
    /// A transient failure — the remote end hiccuped (connection reset,
    /// 5xx, timeout). Retrying the same call may well succeed; a
    /// [`ResilientNetwork`](crate::ResilientNetwork) does exactly that.
    Transient {
        /// What kind of transient failure was observed.
        kind: TransientKind,
    },
    /// The backend is (currently) unreachable: retries were exhausted or a
    /// circuit breaker is open. Callers should degrade — stop the failing
    /// walker, keep the partial result — rather than retry further.
    Unavailable {
        /// Human-readable reason ("retries exhausted", "circuit open", ...).
        reason: UnavailableReason,
    },
}

/// The flavor of a [`AccessError::Transient`] failure, mirroring what a real
/// crawler sees from a flaky HTTP endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransientKind {
    /// The request errored outright (connection reset, 502/503-style).
    Error,
    /// The request timed out after stalling for the carried number of
    /// simulated seconds.
    Timeout {
        /// Simulated seconds the call stalled before timing out.
        stalled_secs: u64,
    },
    /// The endpoint is flapping: a burst of consecutive errors.
    Flap,
}

/// Why a backend is reported [`AccessError::Unavailable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnavailableReason {
    /// The retry policy's attempt cap was reached without a success.
    RetriesExhausted,
    /// The circuit breaker is open; the call was failed fast.
    CircuitOpen,
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::UnknownNode(v) => write!(f, "unknown node {v}"),
            AccessError::BudgetExhausted { budget } => {
                write!(f, "query budget of {budget} exhausted")
            }
            AccessError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            AccessError::RateLimited { retry_after_secs } => {
                write!(f, "rate limited; retry after {retry_after_secs}s")
            }
            AccessError::Transient { kind } => match kind {
                TransientKind::Error => write!(f, "transient error (remote hiccup)"),
                TransientKind::Timeout { stalled_secs } => {
                    write!(f, "transient timeout after {stalled_secs}s stall")
                }
                TransientKind::Flap => write!(f, "transient error (endpoint flapping)"),
            },
            AccessError::Unavailable { reason } => match reason {
                UnavailableReason::RetriesExhausted => {
                    write!(f, "backend unavailable: retries exhausted")
                }
                UnavailableReason::CircuitOpen => {
                    write!(f, "backend unavailable: circuit breaker open")
                }
            },
        }
    }
}

impl AccessError {
    /// Whether a retry of the same call could plausibly succeed. This is
    /// what a [`ResilientNetwork`](crate::ResilientNetwork) retries;
    /// everything else propagates immediately.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            AccessError::Transient { .. } | AccessError::RateLimited { .. }
        )
    }

    /// Whether this error should *degrade* the failing walker (stop it,
    /// keep the samples it produced) instead of failing the whole job —
    /// the same treatment budget exhaustion gets.
    pub fn is_degradation(&self) -> bool {
        matches!(
            self,
            AccessError::Transient { .. }
                | AccessError::Unavailable { .. }
                | AccessError::RateLimited { .. }
        )
    }
}

impl std::error::Error for AccessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AccessError::UnknownNode(NodeId(3))
            .to_string()
            .contains('3'));
        assert!(AccessError::BudgetExhausted { budget: 100 }
            .to_string()
            .contains("100"));
        assert!(AccessError::UnknownAttribute("stars".into())
            .to_string()
            .contains("stars"));
        assert!(AccessError::RateLimited {
            retry_after_secs: 60
        }
        .to_string()
        .contains("60"));
        assert!(AccessError::Transient {
            kind: TransientKind::Timeout { stalled_secs: 30 }
        }
        .to_string()
        .contains("30"));
        assert!(AccessError::Unavailable {
            reason: UnavailableReason::CircuitOpen
        }
        .to_string()
        .contains("circuit"));
    }

    #[test]
    fn retry_and_degradation_taxonomy() {
        let transient = AccessError::Transient {
            kind: TransientKind::Error,
        };
        let rate_limited = AccessError::RateLimited {
            retry_after_secs: 900,
        };
        let unavailable = AccessError::Unavailable {
            reason: UnavailableReason::RetriesExhausted,
        };
        assert!(transient.is_retryable() && transient.is_degradation());
        assert!(rate_limited.is_retryable() && rate_limited.is_degradation());
        assert!(!unavailable.is_retryable() && unavailable.is_degradation());
        for fatal in [
            AccessError::UnknownNode(NodeId(1)),
            AccessError::UnknownAttribute("x".into()),
            AccessError::BudgetExhausted { budget: 5 },
        ] {
            assert!(!fatal.is_retryable());
            assert!(!fatal.is_degradation());
        }
    }
}
