//! Errors surfaced by the restricted access interface.

use std::fmt;
use wnw_graph::NodeId;

/// Errors a sampler can hit while talking to the (simulated) social network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// The node id is not a user of the network.
    UnknownNode(NodeId),
    /// The query budget configured for this session is exhausted.
    ///
    /// Experiments use this to stop samplers exactly at a query-cost grid
    /// point; callers are expected to treat it as a normal termination signal.
    BudgetExhausted {
        /// The budget that was configured.
        budget: u64,
    },
    /// The requested attribute is not exposed by the network.
    UnknownAttribute(String),
    /// The rate limiter rejected the call (only produced when the limiter is
    /// configured to reject rather than to account for waiting time).
    RateLimited {
        /// How many simulated seconds the caller would have to wait.
        retry_after_secs: u64,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::UnknownNode(v) => write!(f, "unknown node {v}"),
            AccessError::BudgetExhausted { budget } => {
                write!(f, "query budget of {budget} exhausted")
            }
            AccessError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            AccessError::RateLimited { retry_after_secs } => {
                write!(f, "rate limited; retry after {retry_after_secs}s")
            }
        }
    }
}

impl std::error::Error for AccessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AccessError::UnknownNode(NodeId(3))
            .to_string()
            .contains('3'));
        assert!(AccessError::BudgetExhausted { budget: 100 }
            .to_string()
            .contains("100"));
        assert!(AccessError::UnknownAttribute("stars".into())
            .to_string()
            .contains("stars"));
        assert!(AccessError::RateLimited {
            retry_after_secs: 60
        }
        .to_string()
        .contains("60"));
    }
}
