//! Query-cost accounting.
//!
//! The paper's efficiency measure is the **query cost**: "the number of nodes
//! it has to access in order to obtain a predetermined number of samples"
//! (Section 2.4). Re-querying a node already fetched costs nothing because a
//! crawler caches responses locally; this is also what makes the paper's
//! initial-crawling heuristic cheap ("many nodes in the neighborhood may
//! already be accessed by the WALK part"). The counter therefore tracks
//!
//! * `unique_nodes` — distinct nodes whose neighbor list has been fetched
//!   (this is *the* query cost used everywhere in the experiments),
//! * `api_calls` — raw calls including cache hits, for rate-limit modelling,
//! * an optional hard [`QueryBudget`] that makes further queries fail with
//!   [`AccessError::BudgetExhausted`].

use crate::error::AccessError;
use crate::sync::lock;
use crate::Result;
use std::collections::HashSet;
use std::sync::Mutex;
use wnw_graph::NodeId;

/// A hard cap on the number of unique-node queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryBudget(pub u64);

impl QueryBudget {
    /// A budget that never runs out.
    pub const UNLIMITED: QueryBudget = QueryBudget(u64::MAX);
}

/// A snapshot of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Distinct nodes whose neighborhood has been queried — the paper's
    /// query-cost measure.
    pub unique_nodes: u64,
    /// Total neighbor-list API calls, including repeats served from cache.
    pub api_calls: u64,
    /// Calls served from the local cache (no charge).
    pub cache_hits: u64,
    /// Attribute reads (these target already-visited nodes and are free in
    /// the paper's cost model, but are tracked for completeness).
    pub attribute_reads: u64,
}

/// Thread-safe query-cost accounting shared by an access layer and the
/// experiment harness.
#[derive(Debug)]
pub struct QueryCounter {
    inner: Mutex<CounterInner>,
    budget: QueryBudget,
}

#[derive(Debug, Default)]
struct CounterInner {
    visited: HashSet<NodeId>,
    stats: QueryStats,
}

impl QueryCounter {
    /// Creates a counter with an unlimited budget.
    pub fn unlimited() -> Self {
        Self::with_budget(QueryBudget::UNLIMITED)
    }

    /// Creates a counter that fails queries beyond `budget` unique nodes.
    pub fn with_budget(budget: QueryBudget) -> Self {
        QueryCounter {
            inner: Mutex::new(CounterInner::default()),
            budget,
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> QueryBudget {
        self.budget
    }

    /// Records a neighbor-list query against node `v`.
    ///
    /// Returns `Ok(true)` if this was the first (charged) access to `v`,
    /// `Ok(false)` on a cache hit, and an error if the budget would be
    /// exceeded by a charged access.
    pub fn record_neighbor_query(&self, v: NodeId) -> Result<bool> {
        let mut inner = lock(&self.inner);
        inner.stats.api_calls += 1;
        if inner.visited.contains(&v) {
            inner.stats.cache_hits += 1;
            return Ok(false);
        }
        if inner.stats.unique_nodes >= self.budget.0 {
            // Undo the api_call bump? Keep it: the caller did attempt a call.
            return Err(AccessError::BudgetExhausted {
                budget: self.budget.0,
            });
        }
        inner.visited.insert(v);
        inner.stats.unique_nodes += 1;
        Ok(true)
    }

    /// Records an attribute read (not charged against the budget).
    pub fn record_attribute_read(&self) {
        lock(&self.inner).stats.attribute_reads += 1;
    }

    /// Returns whether node `v` has already been charged (i.e. is cached).
    pub fn is_visited(&self, v: NodeId) -> bool {
        lock(&self.inner).visited.contains(&v)
    }

    /// Number of unique nodes charged so far — the query cost.
    pub fn query_cost(&self) -> u64 {
        lock(&self.inner).stats.unique_nodes
    }

    /// Remaining budget in unique-node queries.
    pub fn remaining(&self) -> u64 {
        let used = self.query_cost();
        self.budget.0.saturating_sub(used)
    }

    /// A copy of all counters.
    pub fn stats(&self) -> QueryStats {
        lock(&self.inner).stats
    }

    /// Resets all counters and the visited set (the budget is kept).
    pub fn reset(&self) {
        let mut inner = lock(&self.inner);
        inner.visited.clear();
        inner.stats = QueryStats::default();
    }
}

impl Default for QueryCounter {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_node_accounting() {
        let c = QueryCounter::unlimited();
        assert!(c.record_neighbor_query(NodeId(1)).unwrap());
        assert!(!c.record_neighbor_query(NodeId(1)).unwrap());
        assert!(c.record_neighbor_query(NodeId(2)).unwrap());
        let s = c.stats();
        assert_eq!(s.unique_nodes, 2);
        assert_eq!(s.api_calls, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(c.query_cost(), 2);
        assert!(c.is_visited(NodeId(1)));
        assert!(!c.is_visited(NodeId(3)));
    }

    #[test]
    fn budget_enforced_only_for_new_nodes() {
        let c = QueryCounter::with_budget(QueryBudget(2));
        c.record_neighbor_query(NodeId(1)).unwrap();
        c.record_neighbor_query(NodeId(2)).unwrap();
        // Cache hits are still allowed.
        assert!(!c.record_neighbor_query(NodeId(1)).unwrap());
        // A third unique node exceeds the budget.
        let err = c.record_neighbor_query(NodeId(3)).unwrap_err();
        assert_eq!(err, AccessError::BudgetExhausted { budget: 2 });
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn reset_clears_counts_but_keeps_budget() {
        let c = QueryCounter::with_budget(QueryBudget(5));
        c.record_neighbor_query(NodeId(1)).unwrap();
        c.record_attribute_read();
        c.reset();
        assert_eq!(c.stats(), QueryStats::default());
        assert_eq!(c.budget(), QueryBudget(5));
        assert_eq!(c.remaining(), 5);
    }

    #[test]
    fn attribute_reads_do_not_consume_budget() {
        let c = QueryCounter::with_budget(QueryBudget(1));
        c.record_attribute_read();
        c.record_attribute_read();
        assert_eq!(c.stats().attribute_reads, 2);
        assert_eq!(c.remaining(), 1);
    }
}
