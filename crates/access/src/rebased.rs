//! A network view whose walks start from a caller-chosen node.
//!
//! Every sampler in this workspace bootstraps from
//! [`SocialNetwork::seed_node`] — the one account a crawler is assumed to
//! know. [`Rebased`] overrides that single answer while delegating every
//! query to the wrapped handle, which is how a multi-tenant service lets
//! each job pick its own start node (a per-job knob, not a property of the
//! network) without threading a start parameter through every sampler
//! constructor. The override is also the `start` component of the job's
//! cross-job history key, so two jobs rebased to the same node exchange
//! history while jobs on different nodes never do.

use crate::counter::QueryStats;
use crate::interface::SocialNetwork;
use crate::Result;
use wnw_graph::NodeId;

/// A [`SocialNetwork`] wrapper that answers [`seed_node`] with a chosen
/// node (or the inner network's own when `None`).
///
/// [`seed_node`]: SocialNetwork::seed_node
#[derive(Debug, Clone)]
pub struct Rebased<N> {
    inner: N,
    start: Option<NodeId>,
}

impl<N: SocialNetwork> Rebased<N> {
    /// Wraps `inner`, overriding its seed node with `start` (a `None`
    /// passes the inner network's answer through unchanged, so call sites
    /// can wrap unconditionally).
    pub fn new(inner: N, start: Option<NodeId>) -> Self {
        Rebased { inner, start }
    }

    /// The wrapped handle.
    pub fn inner(&self) -> &N {
        &self.inner
    }
}

impl<N: SocialNetwork> SocialNetwork for Rebased<N> {
    fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>> {
        self.inner.neighbors(v)
    }

    fn degree(&self, v: NodeId) -> Result<usize> {
        self.inner.degree(v)
    }

    fn attribute(&self, name: &str, v: NodeId) -> Result<f64> {
        self.inner.attribute(name, v)
    }

    fn seed_node(&self) -> NodeId {
        self.start.unwrap_or_else(|| self.inner.seed_node())
    }

    fn query_stats(&self) -> QueryStats {
        self.inner.query_stats()
    }

    fn reset_counters(&self) {
        self.inner.reset_counters()
    }

    fn node_count_hint(&self) -> Option<usize> {
        self.inner.node_count_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulated::SimulatedOsn;
    use wnw_graph::generators::classic::cycle;

    #[test]
    fn overrides_only_the_seed_node() {
        let osn = SimulatedOsn::new(cycle(10));
        let plain = Rebased::new(&osn, None);
        assert_eq!(plain.seed_node(), osn.seed_node());

        let moved = Rebased::new(&osn, Some(NodeId(7)));
        assert_eq!(moved.seed_node(), NodeId(7));
        // Queries still delegate (and still meter) through the inner handle.
        assert_eq!(moved.neighbors(NodeId(3)).unwrap().len(), 2);
        assert_eq!(moved.node_count_hint(), Some(10));
        assert_eq!(moved.query_stats().unique_nodes, osn.query_cost());
        assert!(osn.query_cost() > 0);
    }
}
