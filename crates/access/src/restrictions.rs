//! Neighbor-list access restrictions (paper Section 6.3.1).
//!
//! Real services rarely return the complete follower list in one call. The
//! paper distinguishes three restriction types:
//!
//! 1. a **random** subset of `k` neighbors per invocation (different calls may
//!    see different subsets),
//! 2. a **fixed** subset of `k` neighbors picked once per node,
//! 3. a hard **truncation** to the first `l` neighbors (e.g. Twitter's 5 000
//!    cap) — statistically indistinguishable from (2).
//!
//! Under (2)/(3) the visible graph is no longer symmetric, so the paper
//! prescribes a *bidirectional check*: an edge `(u, v)` is only traversed if
//! `u ∈ N(v)` **and** `v ∈ N(u)`. [`SimulatedOsn`](crate::SimulatedOsn)
//! applies that check when a restriction of type (2)/(3) is active.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wnw_graph::NodeId;

/// How the service restricts the neighbor lists it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborRestriction {
    /// The full neighbor list is returned (the paper's main setting).
    #[default]
    Full,
    /// Each invocation returns `k` neighbors drawn uniformly at random
    /// (restriction type 1).
    RandomSubset {
        /// Maximum number of neighbors returned per call.
        k: usize,
    },
    /// Every invocation returns the same `k` neighbors, picked once per node
    /// by a seeded shuffle (restriction type 2).
    FixedSubset {
        /// Number of neighbors permanently visible per node.
        k: usize,
    },
    /// The list is truncated to the first `l` neighbors in the service's
    /// storage order (restriction type 3, e.g. Twitter's 5 000-follower cap).
    Truncated {
        /// Maximum number of neighbors returned.
        l: usize,
    },
}

impl NeighborRestriction {
    /// Whether traversals must apply the bidirectional-edge check
    /// (restrictions 2 and 3 make visibility asymmetric).
    pub fn requires_bidirectional_check(&self) -> bool {
        matches!(
            self,
            NeighborRestriction::FixedSubset { .. } | NeighborRestriction::Truncated { .. }
        )
    }

    /// Applies the restriction to a full neighbor list.
    ///
    /// * `node` — the node whose neighbors these are (fixes the per-node
    ///   subset for [`FixedSubset`](NeighborRestriction::FixedSubset));
    /// * `invocation` — a per-call counter (randomises
    ///   [`RandomSubset`](NeighborRestriction::RandomSubset) across calls);
    /// * `seed` — the access layer's base seed.
    pub fn apply(&self, node: NodeId, full: &[NodeId], invocation: u64, seed: u64) -> Vec<NodeId> {
        match *self {
            NeighborRestriction::Full => full.to_vec(),
            NeighborRestriction::RandomSubset { k } => {
                if full.len() <= k {
                    return full.to_vec();
                }
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (u64::from(node.0) << 20) ^ invocation.wrapping_mul(0x9e37_79b9),
                );
                let mut list = full.to_vec();
                list.shuffle(&mut rng);
                list.truncate(k);
                list.sort_unstable();
                list
            }
            NeighborRestriction::FixedSubset { k } => {
                if full.len() <= k {
                    return full.to_vec();
                }
                // Per-node deterministic subset: same seed every invocation.
                let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(node.0) << 20));
                let mut list = full.to_vec();
                list.shuffle(&mut rng);
                list.truncate(k);
                list.sort_unstable();
                list
            }
            NeighborRestriction::Truncated { l } => {
                let mut list = full.to_vec();
                list.truncate(l);
                list
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nbrs(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn full_returns_everything() {
        let r = NeighborRestriction::Full;
        assert_eq!(r.apply(NodeId(0), &nbrs(5), 0, 1), nbrs(5));
        assert!(!r.requires_bidirectional_check());
    }

    #[test]
    fn random_subset_differs_across_invocations() {
        let r = NeighborRestriction::RandomSubset { k: 3 };
        let full = nbrs(50);
        let a = r.apply(NodeId(1), &full, 0, 7);
        let b = r.apply(NodeId(1), &full, 1, 7);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        // With 50 neighbors, two independent 3-subsets almost surely differ;
        // if they are equal the restriction is still correct, so only check
        // that repeated invocation with the same counter is deterministic.
        assert_eq!(r.apply(NodeId(1), &full, 0, 7), a);
        assert!(!r.requires_bidirectional_check());
    }

    #[test]
    fn fixed_subset_is_stable_per_node() {
        let r = NeighborRestriction::FixedSubset { k: 4 };
        let full = nbrs(30);
        let a = r.apply(NodeId(2), &full, 0, 9);
        let b = r.apply(NodeId(2), &full, 99, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(r.requires_bidirectional_check());
    }

    #[test]
    fn truncation_keeps_prefix() {
        let r = NeighborRestriction::Truncated { l: 2 };
        assert_eq!(
            r.apply(NodeId(0), &nbrs(5), 0, 1),
            vec![NodeId(0), NodeId(1)]
        );
        assert!(r.requires_bidirectional_check());
    }

    #[test]
    fn small_lists_pass_through() {
        let full = nbrs(2);
        for r in [
            NeighborRestriction::RandomSubset { k: 5 },
            NeighborRestriction::FixedSubset { k: 5 },
            NeighborRestriction::Truncated { l: 5 },
        ] {
            assert_eq!(r.apply(NodeId(0), &full, 0, 1), full);
        }
    }
}
