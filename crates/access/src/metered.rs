//! Per-caller metering over a shared network.
//!
//! When several walkers share one [`CachedNetwork`](crate::CachedNetwork),
//! the cache's counters describe the *pool*: how many distinct nodes anyone
//! paid for. A [`MeteredNetwork`] layers an independent [`QueryCounter`] on
//! top so each walker also has its own view — which nodes *it* touched, and
//! its own [`QueryBudget`] enforced against that view.
//!
//! Per-walker budgets are what keep the sampling engine deterministic: a
//! budget shared by concurrent walkers is exhausted by whichever walker
//! happens to query last, so the accepted-sample multiset would depend on
//! thread interleaving. A budget split across walkers is enforced against
//! each walker's own deterministic query sequence instead.

use crate::counter::{QueryBudget, QueryCounter, QueryStats};
use crate::interface::SocialNetwork;
use crate::Result;
use std::sync::Arc;
use wnw_graph::NodeId;

/// An independent metering (and optional budget) view over a shared network.
///
/// The counter sits behind an [`Arc`] so a caller that hands the view to a
/// sampler (which takes its network by value) can keep a handle for reading
/// the stats afterwards — the engine reports per-walker costs this way.
///
/// The view meters *answered* queries: an inner failure (rate limit, unknown
/// node) consumes no budget and leaves the counters untouched, so a retry is
/// charged as the first access it effectively is.
#[derive(Debug, Clone)]
pub struct MeteredNetwork<N> {
    inner: N,
    counter: Arc<QueryCounter>,
}

impl<N: SocialNetwork> MeteredNetwork<N> {
    /// Wraps `inner` with an unlimited per-view budget.
    pub fn new(inner: N) -> Self {
        Self::with_budget(inner, QueryBudget::UNLIMITED)
    }

    /// Wraps `inner`, failing this view's queries beyond `budget` unique
    /// nodes — regardless of how cheap they are for the wrapped network.
    pub fn with_budget(inner: N, budget: QueryBudget) -> Self {
        MeteredNetwork {
            inner,
            counter: Arc::new(QueryCounter::with_budget(budget)),
        }
    }

    /// The wrapped network.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// This view's own counters (also returned by
    /// [`query_stats`](SocialNetwork::query_stats)).
    pub fn counter(&self) -> &QueryCounter {
        &self.counter
    }

    /// A retained handle to this view's counters, usable after the view has
    /// been moved into a sampler.
    pub fn counter_handle(&self) -> Arc<QueryCounter> {
        self.counter.clone()
    }
}

impl<N: SocialNetwork> SocialNetwork for MeteredNetwork<N> {
    fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>> {
        // Enforce this view's budget *before* issuing the inner query, but
        // record the charge only *after* it succeeds: a failed query (rate
        // limit, unknown node) must not consume budget or mark the node as
        // visited, or a later successful retry would be mis-counted as free.
        if !self.counter.is_visited(v) && self.counter.remaining() == 0 {
            return Err(crate::AccessError::BudgetExhausted {
                budget: self.counter.budget().0,
            });
        }
        let list = self.inner.neighbors(v)?;
        self.counter
            .record_neighbor_query(v)
            .expect("budget was checked before the inner query");
        Ok(list)
    }

    fn attribute(&self, name: &str, v: NodeId) -> Result<f64> {
        let value = self.inner.attribute(name, v)?;
        self.counter.record_attribute_read();
        Ok(value)
    }

    fn seed_node(&self) -> NodeId {
        self.inner.seed_node()
    }

    fn query_stats(&self) -> QueryStats {
        self.counter.stats()
    }

    fn reset_counters(&self) {
        // A view reset is local: the shared inner network keeps its state.
        self.counter.reset();
    }

    fn node_count_hint(&self) -> Option<usize> {
        self.inner.node_count_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cached::CachedNetwork;
    use crate::simulated::SimulatedOsn;
    use crate::AccessError;
    use wnw_graph::generators::classic::complete;

    #[test]
    fn views_meter_independently_over_one_cache() {
        let cache = CachedNetwork::new(SimulatedOsn::new(complete(6)));
        let a = MeteredNetwork::new(&cache);
        let b = MeteredNetwork::new(&cache);
        a.neighbors(NodeId(0)).unwrap();
        a.neighbors(NodeId(1)).unwrap();
        b.neighbors(NodeId(1)).unwrap();
        assert_eq!(a.query_cost(), 2);
        assert_eq!(b.query_cost(), 1);
        // The pool paid only twice: b's query was a cache hit.
        assert_eq!(cache.query_cost(), 2);
        assert_eq!(cache.query_stats().cache_hits, 1);
    }

    #[test]
    fn view_budget_is_enforced_even_for_cached_nodes() {
        let cache = CachedNetwork::new(SimulatedOsn::new(complete(6)));
        cache.neighbors(NodeId(0)).unwrap();
        cache.neighbors(NodeId(1)).unwrap();
        cache.neighbors(NodeId(2)).unwrap();
        let view = MeteredNetwork::with_budget(&cache, QueryBudget(2));
        view.neighbors(NodeId(0)).unwrap();
        view.neighbors(NodeId(1)).unwrap();
        // Node 2 is free for the pool but exceeds this view's budget.
        assert!(matches!(
            view.neighbors(NodeId(2)),
            Err(AccessError::BudgetExhausted { budget: 2 })
        ));
        // Re-reads of the view's own nodes stay allowed.
        assert!(view.neighbors(NodeId(1)).is_ok());
    }

    #[test]
    fn failed_queries_consume_no_budget() {
        let view = MeteredNetwork::with_budget(SimulatedOsn::new(complete(3)), QueryBudget(2));
        for _ in 0..3 {
            assert!(matches!(
                view.neighbors(NodeId(99)),
                Err(AccessError::UnknownNode(NodeId(99)))
            ));
        }
        assert_eq!(view.query_stats(), QueryStats::default());
        // The full budget is still available for real queries.
        view.neighbors(NodeId(0)).unwrap();
        view.neighbors(NodeId(1)).unwrap();
        assert_eq!(view.query_cost(), 2);
        assert!(matches!(
            view.neighbors(NodeId(2)),
            Err(AccessError::BudgetExhausted { budget: 2 })
        ));
    }

    #[test]
    fn reset_is_local_to_the_view() {
        let cache = CachedNetwork::new(SimulatedOsn::new(complete(4)));
        let view = MeteredNetwork::new(&cache);
        view.neighbors(NodeId(0)).unwrap();
        view.reset_counters();
        assert_eq!(view.query_cost(), 0);
        assert_eq!(
            cache.query_cost(),
            1,
            "shared cache state must survive a view reset"
        );
        assert!(cache.is_cached(NodeId(0)));
    }

    #[test]
    fn attribute_and_hints_delegate() {
        let mut g = complete(3);
        g.set_attribute("stars", vec![5.0, 4.0, 3.0]).unwrap();
        let view = MeteredNetwork::new(SimulatedOsn::new(g));
        assert_eq!(view.attribute("stars", NodeId(1)).unwrap(), 4.0);
        assert_eq!(view.query_stats().attribute_reads, 1);
        assert_eq!(view.node_count_hint(), Some(3));
        assert_eq!(view.seed_node(), NodeId(0));
    }
}
