//! # wnw-access
//!
//! The restricted access layer of the reproduction of *"Walk, Not Wait"*
//! (Nazi et al., VLDB 2015).
//!
//! The whole premise of the paper is that a third party can only see an
//! online social network through a **local-neighborhood query interface**:
//! given a user `v`, the service returns `N(v)` — and every such access
//! counts against a query budget (rate limits, API quotas). This crate makes
//! that constraint explicit in the type system:
//!
//! * [`SocialNetwork`] — the only view samplers get of a graph: `neighbors`,
//!   `degree`, and per-node attribute reads, all of which are metered;
//! * [`QueryCounter`] — unique-node query accounting (the paper's query-cost
//!   measure) plus raw API-call counts;
//! * [`SimulatedOsn`] — wraps a [`wnw_graph::Graph`] behind the interface,
//!   with a neighbor cache, optional [`NeighborRestriction`]s (Section 6.3:
//!   random-k, fixed-k, truncated neighbor lists with bidirectional-edge
//!   checking), and an optional [`RateLimiter`];
//! * [`QueryBudget`] / [`AccessError`] — hard budget enforcement so
//!   experiments can ask "what does each sampler deliver for X queries?";
//! * [`CachedNetwork`] — a sharded, lock-striped neighbor cache any number
//!   of concurrent walkers can share, with exact unique-node accounting
//!   under contention;
//! * [`MeteredNetwork`] — an independent per-caller metering and budget view
//!   over a shared network (how the engine gives each walker its own
//!   deterministic budget share);
//! * [`ThreadedNetwork`] — the `Send + Sync` marker the concurrent engine
//!   requires of a network handle shared across worker threads;
//! * [`FaultyNetwork`] — seeded, deterministic fault injection (transient
//!   errors, timeout stalls, rate-limit bursts, flaps, blackout nodes) over
//!   any network, for chaos testing;
//! * [`ResilientNetwork`] — bounded retries with decorrelated-jitter
//!   backoff on a simulated clock, honored `Retry-After` hints, and a
//!   per-backend circuit breaker, with [`ResilienceStats`] counters the
//!   service layer surfaces.
//!
//! Samplers in `wnw-mcmc` and `wnw-core` are written against the trait, so
//! swapping a simulated graph for a live crawler is a matter of implementing
//! [`SocialNetwork`] once — the caching, metering, and concurrency layers
//! compose on top unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cached;
pub mod counter;
pub mod error;
pub mod fault;
pub mod interface;
pub mod metered;
pub mod rate_limit;
pub mod rebased;
pub mod resilient;
pub mod restrictions;
pub mod simulated;
pub mod sync;

pub use cached::CachedNetwork;
pub use counter::{QueryBudget, QueryCounter, QueryStats};
pub use error::{AccessError, TransientKind, UnavailableReason};
pub use fault::{FaultInjector, FaultProfile, FaultStats, FaultyNetwork};
pub use interface::{SocialNetwork, ThreadedNetwork};
pub use metered::MeteredNetwork;
pub use rate_limit::{RateLimitMode, RateLimitPolicy, RateLimiter};
pub use rebased::Rebased;
pub use resilient::{ResilienceMonitor, ResilienceStats, ResilientNetwork, RetryPolicy};
pub use restrictions::NeighborRestriction;
pub use simulated::SimulatedOsn;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AccessError>;
