//! Seeded, deterministic fault injection for any [`SocialNetwork`].
//!
//! Real OSN endpoints fail: connections reset, gateways time out, `429`s
//! arrive in bursts, and whole endpoints flap (Sections 1.1 and 6.3.1 of
//! the paper motivate exactly this hostility). [`FaultyNetwork`] wraps any
//! network with a [`FaultInjector`] whose schedule is a **pure function of
//! `(seed, node, per-node call index)`** via SplitMix64 — the same
//! determinism idiom as [`SimulatedOsn`](crate::SimulatedOsn)'s
//! per-node fetch counts — so the same seed produces the same fault
//! sequence at any thread count or interleaving.
//!
//! The schedule is shaped as an *initial run* of faults per node: a node
//! faults for its first `k` calls (capped by
//! [`FaultProfile::max_faults_per_node`]) and then passes, with the run
//! position resetting on every clean call. Keeping the cap at or below a
//! retry policy's attempt budget makes every top-level fetch outcome a pure
//! function of the node alone — a
//! [`ResilientNetwork`](crate::ResilientNetwork) absorbs the run and
//! returns the true neighbor list — which is what keeps sample multisets
//! thread-count-invariant under injection. *Blackout* nodes ignore the cap
//! and fail every call, deterministically exhausting any retry budget (the
//! knob chaos scenarios use to force a circuit-breaker trip).
//!
//! Only neighbor fetches are faulted: attribute reads model parsing a
//! profile page already retrieved, and the paper charges (and so this crate
//! faults) only the queries that hit the server.

use crate::counter::QueryStats;
use crate::error::{AccessError, TransientKind};
use crate::interface::SocialNetwork;
use crate::sync::lock;
use crate::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use wnw_graph::NodeId;

/// SplitMix64 — the same mixer the loadgen scenario planner derives seeds
/// with; a full-avalanche hash good enough for schedule decisions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` from `(seed, node, index, salt)`.
fn uniform(seed: u64, v: NodeId, index: u64, salt: u64) -> f64 {
    let mut x = splitmix64(seed ^ salt);
    x = splitmix64(x ^ u64::from(v.0));
    x = splitmix64(x ^ index);
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_BLACKOUT: u64 = 0xB1AC_0001;
const SALT_TRANSIENT: u64 = 0x7E57_0002;
const SALT_STALL: u64 = 0x57A1_0003;
const SALT_RATE: u64 = 0x4A7E_0004;
const SALT_FLAP: u64 = 0xF1A9_0005;

/// Per-call fault probabilities and magnitudes for a [`FaultInjector`].
///
/// Each probability is evaluated independently per `(node, run position)`;
/// the first matching type in the order *rate limit → stall → flap →
/// transient* wins. All-zero means injection is off and the wrapper is a
/// transparent pass-through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability a call fails with a plain transient error (reset / 5xx).
    pub transient_error: f64,
    /// Probability a call stalls on the simulated clock and times out.
    pub stall: f64,
    /// Simulated seconds a stalled call loses before timing out.
    pub stall_secs: u64,
    /// Probability a call is answered with a `429`-style rate-limit burst.
    pub rate_limit: f64,
    /// The `Retry-After` carried by injected rate limits, in simulated
    /// seconds.
    pub retry_after_secs: u64,
    /// Probability a call lands in an error flap (a short burst of
    /// consecutive errors reported as [`TransientKind::Flap`]).
    pub flap: f64,
    /// Fraction of nodes that are blacked out: every call to such a node
    /// fails, deterministically exhausting any bounded retry policy.
    pub blackout_fraction: f64,
    /// Hard cap on consecutive injected faults per node (blackout nodes
    /// excepted). Keep this at or below the retry policy's attempt budget
    /// and every non-blackout fetch eventually succeeds — the invariant
    /// behind thread-count-invariant sample multisets under injection.
    pub max_faults_per_node: u64,
}

impl FaultProfile {
    /// Injection disabled: every probability zero.
    pub const OFF: FaultProfile = FaultProfile {
        transient_error: 0.0,
        stall: 0.0,
        stall_secs: 0,
        rate_limit: 0.0,
        retry_after_secs: 0,
        flap: 0.0,
        blackout_fraction: 0.0,
        max_faults_per_node: 0,
    };

    /// The chaos testbed profile: ≥ 5 % transient errors, stalls,
    /// rate-limit bursts, flaps, and a sliver of blacked-out nodes to force
    /// a breaker trip. `max_faults_per_node` is 2, inside the default
    /// retry policy's 3-retry budget.
    pub fn chaos() -> FaultProfile {
        FaultProfile {
            transient_error: 0.06,
            stall: 0.02,
            stall_secs: 30,
            rate_limit: 0.02,
            retry_after_secs: 5,
            flap: 0.01,
            blackout_fraction: 0.002,
            max_faults_per_node: 2,
        }
    }

    /// Whether this profile injects nothing.
    pub fn is_off(&self) -> bool {
        self.transient_error <= 0.0
            && self.stall <= 0.0
            && self.rate_limit <= 0.0
            && self.flap <= 0.0
            && self.blackout_fraction <= 0.0
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::OFF
    }
}

/// Counts of injected faults, by type, plus the simulated seconds lost to
/// stalls. All counters are totals since construction (or the last
/// [`FaultInjector::reset`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Calls that passed through un-faulted.
    pub calls_passed: u64,
    /// Plain transient errors injected.
    pub transient_errors: u64,
    /// Timeout stalls injected.
    pub stalls: u64,
    /// Simulated seconds lost to injected stalls.
    pub stalled_secs: u64,
    /// Rate-limit bursts injected.
    pub rate_limits: u64,
    /// Flap-burst errors injected.
    pub flaps: u64,
    /// Calls to blacked-out nodes (each one an injected failure).
    pub blackout_hits: u64,
}

impl FaultStats {
    /// Total faults injected, across every type.
    pub fn total_injected(&self) -> u64 {
        self.transient_errors + self.stalls + self.rate_limits + self.flaps + self.blackout_hits
    }
}

/// The seeded fault schedule and its accounting.
///
/// `decide(node, index)` is pure; the injector's only mutable state is the
/// per-node run position (reset on every clean call) and the stat
/// counters, so the injected-fault sequence per node is identical for a
/// given seed whatever the thread interleaving.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    profile: FaultProfile,
    /// Position within the node's current fault run; reset on a clean call.
    run_position: Mutex<HashMap<NodeId, u64>>,
    clock_secs: AtomicU64,
    calls_passed: AtomicU64,
    transient_errors: AtomicU64,
    stalls: AtomicU64,
    stalled_secs: AtomicU64,
    rate_limits: AtomicU64,
    flaps: AtomicU64,
    blackout_hits: AtomicU64,
}

impl FaultInjector {
    /// A seeded injector over `profile`.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        FaultInjector {
            seed,
            profile,
            run_position: Mutex::new(HashMap::new()),
            clock_secs: AtomicU64::new(0),
            calls_passed: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            stalled_secs: AtomicU64::new(0),
            rate_limits: AtomicU64::new(0),
            flaps: AtomicU64::new(0),
            blackout_hits: AtomicU64::new(0),
        }
    }

    /// The configured profile.
    pub fn profile(&self) -> FaultProfile {
        self.profile
    }

    /// The injection seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether `v` is blacked out under this seed and profile.
    pub fn is_blackout(&self, v: NodeId) -> bool {
        self.profile.blackout_fraction > 0.0
            && uniform(self.seed, v, 0, SALT_BLACKOUT) < self.profile.blackout_fraction
    }

    /// The pure schedule: the fault (if any) for the call at `index` of a
    /// node's fault run. Exposed so tests can enumerate the schedule
    /// without driving a network.
    pub fn decide(&self, v: NodeId, index: u64) -> Option<AccessError> {
        if self.is_blackout(v) {
            return Some(AccessError::Transient {
                kind: TransientKind::Error,
            });
        }
        if self.profile.is_off() || index >= self.profile.max_faults_per_node {
            return None;
        }
        let p = |salt, prob| prob > 0.0 && uniform(self.seed, v, index, salt) < prob;
        if p(SALT_RATE, self.profile.rate_limit) {
            return Some(AccessError::RateLimited {
                retry_after_secs: self.profile.retry_after_secs.max(1),
            });
        }
        if p(SALT_STALL, self.profile.stall) {
            return Some(AccessError::Transient {
                kind: TransientKind::Timeout {
                    stalled_secs: self.profile.stall_secs.max(1),
                },
            });
        }
        if p(SALT_FLAP, self.profile.flap) {
            return Some(AccessError::Transient {
                kind: TransientKind::Flap,
            });
        }
        if p(SALT_TRANSIENT, self.profile.transient_error) {
            return Some(AccessError::Transient {
                kind: TransientKind::Error,
            });
        }
        None
    }

    /// Advances the node's run position and returns the injected fault, if
    /// the schedule has one, recording it in the stats.
    pub fn next_fault(&self, v: NodeId) -> Option<AccessError> {
        if self.profile.is_off() {
            self.calls_passed.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let index = {
            let mut runs = lock(&self.run_position);
            *runs.entry(v).or_insert(0)
        };
        let fault = self.decide(v, index);
        match &fault {
            Some(err) => {
                let mut runs = lock(&self.run_position);
                *runs.entry(v).or_insert(0) += 1;
                match err {
                    AccessError::RateLimited { .. } => {
                        self.rate_limits.fetch_add(1, Ordering::Relaxed);
                    }
                    AccessError::Transient {
                        kind: TransientKind::Timeout { stalled_secs },
                    } => {
                        self.stalls.fetch_add(1, Ordering::Relaxed);
                        self.stalled_secs
                            .fetch_add(*stalled_secs, Ordering::Relaxed);
                        self.clock_secs.fetch_add(*stalled_secs, Ordering::Relaxed);
                    }
                    AccessError::Transient {
                        kind: TransientKind::Flap,
                    } => {
                        self.flaps.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        if self.is_blackout(v) {
                            self.blackout_hits.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.transient_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            None => {
                lock(&self.run_position).insert(v, 0);
                self.calls_passed.fetch_add(1, Ordering::Relaxed);
            }
        }
        fault
    }

    /// Simulated seconds lost to injected stalls so far.
    pub fn clock_secs(&self) -> u64 {
        self.clock_secs.load(Ordering::Relaxed)
    }

    /// A snapshot of every fault counter.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            calls_passed: self.calls_passed.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            stalled_secs: self.stalled_secs.load(Ordering::Relaxed),
            rate_limits: self.rate_limits.load(Ordering::Relaxed),
            flaps: self.flaps.load(Ordering::Relaxed),
            blackout_hits: self.blackout_hits.load(Ordering::Relaxed),
        }
    }

    /// Clears the run positions and counters (seed and profile stay).
    pub fn reset(&self) {
        lock(&self.run_position).clear();
        self.clock_secs.store(0, Ordering::Relaxed);
        self.calls_passed.store(0, Ordering::Relaxed);
        self.transient_errors.store(0, Ordering::Relaxed);
        self.stalls.store(0, Ordering::Relaxed);
        self.stalled_secs.store(0, Ordering::Relaxed);
        self.rate_limits.store(0, Ordering::Relaxed);
        self.flaps.store(0, Ordering::Relaxed);
        self.blackout_hits.store(0, Ordering::Relaxed);
    }
}

/// A [`SocialNetwork`] adapter injecting seeded faults into neighbor
/// fetches. Cloning shares the injector (and the wrapped network, which is
/// cloned alongside).
#[derive(Debug, Clone)]
pub struct FaultyNetwork<N> {
    inner: N,
    injector: Arc<FaultInjector>,
}

impl<N: SocialNetwork> FaultyNetwork<N> {
    /// Wraps `inner` with a fresh injector.
    pub fn new(inner: N, seed: u64, profile: FaultProfile) -> Self {
        FaultyNetwork {
            inner,
            injector: Arc::new(FaultInjector::new(seed, profile)),
        }
    }

    /// The shared injector (schedule inspection and stats).
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// A snapshot of the injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// The wrapped network.
    pub fn inner(&self) -> &N {
        &self.inner
    }
}

impl<N: SocialNetwork> SocialNetwork for FaultyNetwork<N> {
    fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>> {
        if let Some(fault) = self.injector.next_fault(v) {
            return Err(fault);
        }
        self.inner.neighbors(v)
    }

    fn attribute(&self, name: &str, v: NodeId) -> Result<f64> {
        // Attribute reads parse an already-retrieved page; they are neither
        // charged nor faulted.
        self.inner.attribute(name, v)
    }

    fn seed_node(&self) -> NodeId {
        self.inner.seed_node()
    }

    fn query_stats(&self) -> QueryStats {
        self.inner.query_stats()
    }

    fn reset_counters(&self) {
        self.inner.reset_counters();
        self.injector.reset();
    }

    fn node_count_hint(&self) -> Option<usize> {
        self.inner.node_count_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulated::SimulatedOsn;
    use wnw_graph::generators::classic::cycle;
    use wnw_graph::generators::random::barabasi_albert;

    fn chaos_net(seed: u64) -> FaultyNetwork<SimulatedOsn> {
        let graph = barabasi_albert(200, 3, 7).unwrap();
        FaultyNetwork::new(SimulatedOsn::new(graph), seed, FaultProfile::chaos())
    }

    #[test]
    fn off_profile_is_a_transparent_pass_through() {
        let osn = SimulatedOsn::new(cycle(6));
        let direct = osn.neighbors(NodeId(0)).unwrap();
        let faulty = FaultyNetwork::new(SimulatedOsn::new(cycle(6)), 42, FaultProfile::OFF);
        assert_eq!(faulty.neighbors(NodeId(0)).unwrap(), direct);
        assert!(FaultProfile::OFF.is_off());
        assert_eq!(faulty.fault_stats().total_injected(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultInjector::new(0xFA11, FaultProfile::chaos());
        let b = FaultInjector::new(0xFA11, FaultProfile::chaos());
        for v in 0..500u32 {
            for i in 0..4u64 {
                assert_eq!(a.decide(NodeId(v), i), b.decide(NodeId(v), i));
            }
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = FaultInjector::new(1, FaultProfile::chaos());
        let b = FaultInjector::new(2, FaultProfile::chaos());
        let differs =
            (0..2000u32).any(|v| (0..2).any(|i| a.decide(NodeId(v), i) != b.decide(NodeId(v), i)));
        assert!(differs, "schedules for different seeds never diverged");
    }

    #[test]
    fn chaos_profile_injects_at_least_five_percent() {
        let inj = FaultInjector::new(0xC4A05, FaultProfile::chaos());
        let mut faults = 0usize;
        let total = 5_000;
        for v in 0..total {
            if inj.decide(NodeId(v as u32), 0).is_some() {
                faults += 1;
            }
        }
        let rate = faults as f64 / total as f64;
        assert!(rate >= 0.05, "first-call fault rate {rate} below 5%");
        assert!(rate < 0.5, "first-call fault rate {rate} implausibly high");
    }

    #[test]
    fn fault_runs_are_capped_for_non_blackout_nodes() {
        let inj = FaultInjector::new(9, FaultProfile::chaos());
        let cap = FaultProfile::chaos().max_faults_per_node;
        for v in 0..1000u32 {
            if !inj.is_blackout(NodeId(v)) {
                assert_eq!(inj.decide(NodeId(v), cap), None);
            } else {
                assert!(inj.decide(NodeId(v), cap).is_some());
                assert!(inj.decide(NodeId(v), cap + 100).is_some());
            }
        }
    }

    #[test]
    fn run_position_resets_on_clean_calls() {
        // A profile that faults only at run position 0 with certainty has
        // period-1 behaviour: fault, pass, fault, pass...
        let profile = FaultProfile {
            transient_error: 1.0,
            max_faults_per_node: 1,
            ..FaultProfile::OFF
        };
        let net = FaultyNetwork::new(SimulatedOsn::new(cycle(5)), 3, profile);
        assert!(net.neighbors(NodeId(0)).is_err());
        assert!(net.neighbors(NodeId(0)).is_ok());
        assert!(net.neighbors(NodeId(0)).is_err());
        assert!(net.neighbors(NodeId(0)).is_ok());
        let stats = net.fault_stats();
        assert_eq!(stats.transient_errors, 2);
        assert_eq!(stats.calls_passed, 2);
    }

    #[test]
    fn stalls_advance_the_simulated_clock() {
        let profile = FaultProfile {
            stall: 1.0,
            stall_secs: 30,
            max_faults_per_node: 1,
            ..FaultProfile::OFF
        };
        let net = FaultyNetwork::new(SimulatedOsn::new(cycle(5)), 3, profile);
        let err = net.neighbors(NodeId(1)).unwrap_err();
        assert_eq!(
            err,
            AccessError::Transient {
                kind: TransientKind::Timeout { stalled_secs: 30 }
            }
        );
        assert_eq!(net.injector().clock_secs(), 30);
        assert_eq!(net.fault_stats().stalled_secs, 30);
    }

    #[test]
    fn injected_sequence_is_identical_across_runs_and_threads() {
        let sequence = |seed: u64| -> Vec<(u32, Option<AccessError>)> {
            let net = chaos_net(seed);
            (0..200u32)
                .flat_map(|v| {
                    // Drive each node until its run passes, mirroring what a
                    // retry layer does.
                    let mut out = Vec::new();
                    for _ in 0..5 {
                        let fault = net.injector().next_fault(NodeId(v));
                        let done = fault.is_none();
                        out.push((v, fault));
                        if done {
                            break;
                        }
                    }
                    out
                })
                .collect()
        };
        assert_eq!(sequence(0xAB), sequence(0xAB));
        assert_ne!(sequence(0xAB), sequence(0xCD));
    }

    #[test]
    fn reset_clears_stats_but_keeps_the_schedule() {
        let net = chaos_net(5);
        for v in 0..100u32 {
            let _ = net.neighbors(NodeId(v));
        }
        let before = net.fault_stats();
        assert!(before.total_injected() > 0);
        net.reset_counters();
        assert_eq!(net.fault_stats(), FaultStats::default());
        // Schedule is still the same pure function.
        assert_eq!(
            net.injector().decide(NodeId(7), 0),
            FaultInjector::new(5, FaultProfile::chaos()).decide(NodeId(7), 0)
        );
    }
}
