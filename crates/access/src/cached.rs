//! A sharded, lock-striped neighbor cache layered over any [`SocialNetwork`].
//!
//! The paper's cost model already assumes a crawler caches responses locally
//! (re-querying a fetched node is free). [`CachedNetwork`] makes that cache a
//! *composable wrapper* so a pool of concurrent walkers can share it: once
//! any walker has paid for `N(v)`, every other walker reads `N(v)` from the
//! cache without touching the wrapped network — the "leverage shared crawl
//! state" idea of the history-assisted sampling line of work, applied to the
//! neighbor lists themselves.
//!
//! Concurrency design:
//!
//! * the cache is split into [`SHARD_COUNT`] shards, each guarded by its own
//!   mutex, so walkers touching different nodes rarely contend;
//! * a miss holds its shard's lock *across the inner fetch*. Two walkers
//!   racing for the same uncached node therefore serialise, and exactly one
//!   of them performs (and is charged for) the inner query — this is what
//!   makes `QueryStats::unique_nodes` exact under contention, with no
//!   double-charging and no lost updates;
//! * counters use the same [`QueryCounter`] as the rest of the access layer,
//!   whose internal mutex is independent of the shard locks (no lock-order
//!   cycles: shard → counter only).
//!
//! Failed inner queries (budget exhaustion, unknown node) are never cached,
//! so a walker retrying after an error observes the wrapped network's fresh
//! answer.
//!
//! The cache freezes each node's **first** successful response — exactly the
//! paper's cost model, where a crawler stores responses locally and re-reads
//! its copy for free. Under a per-invocation-randomised interface
//! ([`NeighborRestriction::RandomSubset`](crate::NeighborRestriction)), later
//! calls therefore see the frozen first draw rather than fresh subsets;
//! [`SimulatedOsn`](crate::SimulatedOsn) derives that draw from a per-node
//! call index, keeping it (and everything sampled through the cache)
//! deterministic under concurrency.

use crate::counter::{QueryCounter, QueryStats};
use crate::interface::SocialNetwork;
use crate::sync::lock;
use crate::Result;
use std::collections::HashMap;
use std::sync::Mutex;
use wnw_graph::NodeId;

/// Number of independent cache shards. A power of two so the shard index is
/// a mask; 64 keeps contention negligible for worker pools far larger than
/// any machine this runs on.
pub const SHARD_COUNT: usize = 64;

/// A concurrency-safe neighbor cache wrapped around an inner network.
///
/// The wrapper meters its *own* traffic: [`query_stats`] reports the calls
/// walkers made against the cache (`api_calls`), how many were served locally
/// (`cache_hits`), and how many distinct nodes were fetched from the inner
/// network (`unique_nodes` — the paper's query cost). The inner network's own
/// counters keep running independently and stay available through
/// [`CachedNetwork::inner`].
///
/// [`query_stats`]: SocialNetwork::query_stats
#[derive(Debug)]
pub struct CachedNetwork<N> {
    inner: N,
    shards: Vec<Mutex<HashMap<NodeId, Vec<NodeId>>>>,
    counter: QueryCounter,
}

impl<N: SocialNetwork> CachedNetwork<N> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: N) -> Self {
        CachedNetwork {
            inner,
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            counter: QueryCounter::unlimited(),
        }
    }

    /// The wrapped network.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// Unwraps the cache, returning the inner network.
    pub fn into_inner(self) -> N {
        self.inner
    }

    /// Number of neighbor lists currently cached.
    pub fn cached_nodes(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Whether `v`'s neighbor list is cached (i.e. a further query for it is
    /// free).
    pub fn is_cached(&self, v: NodeId) -> bool {
        lock(&self.shards[Self::shard_of(v)]).contains_key(&v)
    }

    fn shard_of(v: NodeId) -> usize {
        // NodeIds are dense small integers; multiply by a 64-bit odd constant
        // (Fibonacci hashing) so consecutive ids spread across shards.
        (((v.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (SHARD_COUNT - 1)
    }
}

impl<N: SocialNetwork> SocialNetwork for CachedNetwork<N> {
    fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>> {
        let shard = &self.shards[Self::shard_of(v)];
        let mut guard = lock(shard);
        if let Some(cached) = guard.get(&v) {
            let list = cached.clone();
            drop(guard);
            // Served locally: counts as an api call + cache hit, never as a
            // new unique node (the entry's presence implies it was recorded).
            let _ = self.counter.record_neighbor_query(v);
            return Ok(list);
        }
        // Miss: fetch while holding the shard lock so a racing walker cannot
        // issue a duplicate inner query for the same node.
        let list = self.inner.neighbors(v)?;
        guard.insert(v, list.clone());
        drop(guard);
        self.counter
            .record_neighbor_query(v)
            .expect("cache counter is unlimited and each node is recorded once");
        Ok(list)
    }

    fn attribute(&self, name: &str, v: NodeId) -> Result<f64> {
        let value = self.inner.attribute(name, v)?;
        self.counter.record_attribute_read();
        Ok(value)
    }

    fn seed_node(&self) -> NodeId {
        self.inner.seed_node()
    }

    fn query_stats(&self) -> QueryStats {
        self.counter.stats()
    }

    fn reset_counters(&self) {
        for shard in &self.shards {
            lock(shard).clear();
        }
        self.counter.reset();
        self.inner.reset_counters();
    }

    fn node_count_hint(&self) -> Option<usize> {
        self.inner.node_count_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::QueryBudget;
    use crate::simulated::SimulatedOsn;
    use crate::AccessError;
    use wnw_graph::generators::classic::{complete, cycle};

    #[test]
    fn hits_are_served_without_touching_inner() {
        let cache = CachedNetwork::new(SimulatedOsn::new(cycle(6)));
        let first = cache.neighbors(NodeId(0)).unwrap();
        assert_eq!(first, vec![NodeId(1), NodeId(5)]);
        assert_eq!(cache.inner().query_stats().api_calls, 1);
        for _ in 0..5 {
            assert_eq!(cache.neighbors(NodeId(0)).unwrap(), first);
        }
        // The inner network saw exactly one call; the cache metered all six.
        assert_eq!(cache.inner().query_stats().api_calls, 1);
        let stats = cache.query_stats();
        assert_eq!(stats.api_calls, 6);
        assert_eq!(stats.cache_hits, 5);
        assert_eq!(stats.unique_nodes, 1);
        assert!(cache.is_cached(NodeId(0)));
        assert!(!cache.is_cached(NodeId(1)));
        assert_eq!(cache.cached_nodes(), 1);
    }

    #[test]
    fn query_cost_matches_distinct_nodes() {
        let cache = CachedNetwork::new(SimulatedOsn::new(complete(10)));
        for round in 0..3 {
            for v in 0..10u32 {
                cache.neighbors(NodeId(v)).unwrap();
            }
            let _ = round;
        }
        assert_eq!(cache.query_cost(), 10);
        assert_eq!(cache.query_stats().api_calls, 30);
        assert_eq!(cache.inner().query_cost(), 10);
    }

    #[test]
    fn errors_are_not_cached() {
        let inner = SimulatedOsn::builder(complete(5))
            .budget(QueryBudget(2))
            .build();
        let cache = CachedNetwork::new(inner);
        cache.neighbors(NodeId(0)).unwrap();
        cache.neighbors(NodeId(1)).unwrap();
        assert!(matches!(
            cache.neighbors(NodeId(2)),
            Err(AccessError::BudgetExhausted { budget: 2 })
        ));
        assert!(!cache.is_cached(NodeId(2)));
        assert_eq!(cache.query_cost(), 2);
        // Cached nodes stay readable after exhaustion.
        assert!(cache.neighbors(NodeId(0)).is_ok());
        assert!(matches!(
            cache.neighbors(NodeId(9)),
            Err(AccessError::UnknownNode(NodeId(9)))
        ));
    }

    #[test]
    fn attribute_reads_delegate_and_are_counted() {
        let mut g = cycle(4);
        g.set_attribute("stars", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let cache = CachedNetwork::new(SimulatedOsn::new(g));
        assert_eq!(cache.attribute("stars", NodeId(2)).unwrap(), 3.0);
        assert_eq!(cache.query_stats().attribute_reads, 1);
        assert_eq!(cache.query_cost(), 0);
    }

    #[test]
    fn reset_clears_cache_and_both_counter_layers() {
        let cache = CachedNetwork::new(SimulatedOsn::new(cycle(5)));
        cache.neighbors(NodeId(0)).unwrap();
        cache.neighbors(NodeId(0)).unwrap();
        cache.reset_counters();
        assert_eq!(cache.query_stats(), QueryStats::default());
        assert_eq!(cache.inner().query_stats(), QueryStats::default());
        assert_eq!(cache.cached_nodes(), 0);
        // Re-querying after reset charges again.
        cache.neighbors(NodeId(0)).unwrap();
        assert_eq!(cache.query_cost(), 1);
    }

    #[test]
    fn concurrent_walkers_never_double_charge() {
        let n = 400;
        let cache = std::sync::Arc::new(CachedNetwork::new(SimulatedOsn::new(complete(n))));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = cache.clone();
                scope.spawn(move || {
                    // Every thread sweeps all nodes, offset so the threads
                    // collide on different nodes at different times.
                    for i in 0..n {
                        let v = NodeId(((i + t * 50) % n) as u32);
                        let got = cache.neighbors(v).unwrap();
                        assert_eq!(got.len(), n - 1);
                    }
                });
            }
        });
        let stats = cache.query_stats();
        assert_eq!(stats.unique_nodes, n as u64, "exactly one charge per node");
        assert_eq!(stats.api_calls, (8 * n) as u64);
        assert_eq!(stats.cache_hits, (8 * n - n) as u64);
        assert_eq!(cache.inner().query_stats().unique_nodes, n as u64);
        assert_eq!(cache.inner().query_stats().api_calls, n as u64);
    }
}
