//! In-memory simulation of a restricted online social network.
//!
//! [`SimulatedOsn`] wraps a [`wnw_graph::Graph`] behind the
//! [`SocialNetwork`] interface: neighbor queries are metered by a
//! [`QueryCounter`], optionally filtered by a [`NeighborRestriction`], and
//! optionally clocked by a [`RateLimiter`]. This is the stand-in for the real
//! Google Plus / Yelp / Twitter web interfaces the paper crawls.

use crate::counter::{QueryBudget, QueryCounter, QueryStats};
use crate::error::AccessError;
use crate::interface::SocialNetwork;
use crate::rate_limit::RateLimiter;
use crate::restrictions::NeighborRestriction;
use crate::sync::lock;
use crate::Result;
use std::sync::Arc;
use std::sync::Mutex;
use wnw_graph::{Graph, NodeId};

/// A simulated online social network backed by an in-memory graph.
///
/// Cloning is cheap and shares the underlying graph, counters, restriction
/// and rate limiter — convenient when an experiment wants several samplers to
/// draw from the same metered session.
#[derive(Debug, Clone)]
pub struct SimulatedOsn {
    graph: Arc<Graph>,
    counter: Arc<QueryCounter>,
    restriction: NeighborRestriction,
    limiter: Arc<RateLimiter>,
    seed_node: NodeId,
    restriction_seed: u64,
    /// Per-node fetch counts driving the randomised restriction. Using a
    /// *per-node* call index (not a global one) makes every response a pure
    /// function of `(node, how often this node was fetched)`: under
    /// concurrent access the first fetch of each node is identical whatever
    /// the thread interleaving, so a cache layer freezing first responses
    /// (`CachedNetwork`) stays deterministic at any thread count.
    fetch_counts: Arc<Mutex<std::collections::HashMap<NodeId, u64>>>,
    /// Cached restricted views for the bidirectional-edge check, so the check
    /// itself does not inflate the query cost (the crawler already has both
    /// lists locally when it performs the check).
    restricted_cache: Arc<Mutex<std::collections::HashMap<NodeId, Vec<NodeId>>>>,
}

impl SimulatedOsn {
    /// Wraps `graph` with unlimited budget, no restriction, no rate limit,
    /// and node 0 as the seed.
    pub fn new(graph: Graph) -> Self {
        Self::builder(graph).build()
    }

    /// Starts a builder for fine-grained configuration.
    pub fn builder(graph: Graph) -> SimulatedOsnBuilder {
        SimulatedOsnBuilder {
            graph,
            budget: QueryBudget::UNLIMITED,
            restriction: NeighborRestriction::Full,
            limiter: None,
            seed_node: NodeId(0),
            restriction_seed: 0x5eed,
        }
    }

    /// The underlying graph (ground-truth computations only — samplers must
    /// not touch this).
    pub fn ground_truth(&self) -> &Graph {
        &self.graph
    }

    /// The shared query counter.
    pub fn counter(&self) -> &QueryCounter {
        &self.counter
    }

    /// The shared rate limiter.
    pub fn rate_limiter(&self) -> &RateLimiter {
        &self.limiter
    }

    /// The configured neighbor restriction.
    pub fn restriction(&self) -> NeighborRestriction {
        self.restriction
    }

    /// Fetches the restricted neighbor view of `v`, charging the query.
    fn fetch_restricted(&self, v: NodeId) -> Result<Vec<NodeId>> {
        if !self.graph.contains(v) {
            return Err(AccessError::UnknownNode(v));
        }
        if self.limiter.mode() == crate::rate_limit::RateLimitMode::Reject {
            // A rejecting limiter turns the caller away *before* the budget
            // is charged — a 429 costs no quota — and its error carries the
            // `retry_after_secs` a retry policy honors.
            self.limiter.acquire()?;
            self.counter.record_neighbor_query(v)?;
        } else {
            self.counter.record_neighbor_query(v)?;
            self.limiter.record_call();
        }
        let invocation = {
            let mut counts = lock(&self.fetch_counts);
            let entry = counts.entry(v).or_insert(0);
            let current = *entry;
            *entry += 1;
            current
        };
        let full = self.graph.neighbors(v);
        let restricted = self
            .restriction
            .apply(v, full, invocation, self.restriction_seed);
        if self.restriction.requires_bidirectional_check() {
            // Fixed subsets are stable per node, so cache them for the check.
            lock(&self.restricted_cache).insert(v, restricted.clone());
        }
        Ok(restricted)
    }

    /// The restricted view of `u` used only for bidirectional checking; does
    /// not charge a query (the check is performed against lists the crawler
    /// has already paid for — conservatively, a cache miss here falls back to
    /// a charged fetch).
    fn restricted_view_for_check(&self, u: NodeId) -> Result<Vec<NodeId>> {
        if let Some(cached) = lock(&self.restricted_cache).get(&u) {
            return Ok(cached.clone());
        }
        self.fetch_restricted(u)
    }
}

impl SocialNetwork for SimulatedOsn {
    fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>> {
        let restricted = self.fetch_restricted(v)?;
        if !self.restriction.requires_bidirectional_check() {
            return Ok(restricted);
        }
        // Section 6.3.1: under fixed/truncated restrictions only traverse
        // edges visible from both endpoints.
        let mut mutual = Vec::with_capacity(restricted.len());
        for u in restricted {
            let back = self.restricted_view_for_check(u)?;
            if back.binary_search(&v).is_ok() || back.contains(&v) {
                mutual.push(u);
            }
        }
        Ok(mutual)
    }

    fn attribute(&self, name: &str, v: NodeId) -> Result<f64> {
        if !self.graph.contains(v) {
            return Err(AccessError::UnknownNode(v));
        }
        self.counter.record_attribute_read();
        self.graph
            .attribute(name, v)
            .map_err(|_| AccessError::UnknownAttribute(name.to_string()))
    }

    fn seed_node(&self) -> NodeId {
        self.seed_node
    }

    fn query_stats(&self) -> QueryStats {
        self.counter.stats()
    }

    fn reset_counters(&self) {
        self.counter.reset();
        self.limiter.reset();
        lock(&self.restricted_cache).clear();
        lock(&self.fetch_counts).clear();
    }

    fn node_count_hint(&self) -> Option<usize> {
        Some(self.graph.node_count())
    }
}

/// Builder for [`SimulatedOsn`].
#[derive(Debug)]
pub struct SimulatedOsnBuilder {
    graph: Graph,
    budget: QueryBudget,
    restriction: NeighborRestriction,
    limiter: Option<RateLimiter>,
    seed_node: NodeId,
    restriction_seed: u64,
}

impl SimulatedOsnBuilder {
    /// Sets a hard unique-node query budget.
    pub fn budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the neighbor-list restriction.
    pub fn restriction(mut self, restriction: NeighborRestriction) -> Self {
        self.restriction = restriction;
        self
    }

    /// Installs a rate limiter.
    pub fn rate_limiter(mut self, limiter: RateLimiter) -> Self {
        self.limiter = Some(limiter);
        self
    }

    /// Chooses the seed node returned by [`SocialNetwork::seed_node`].
    pub fn seed_node(mut self, v: NodeId) -> Self {
        self.seed_node = v;
        self
    }

    /// Seed for the restriction's pseudo-random subset choices.
    pub fn restriction_seed(mut self, seed: u64) -> Self {
        self.restriction_seed = seed;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SimulatedOsn {
        SimulatedOsn {
            graph: Arc::new(self.graph),
            counter: Arc::new(QueryCounter::with_budget(self.budget)),
            restriction: self.restriction,
            limiter: Arc::new(self.limiter.unwrap_or_default()),
            seed_node: self.seed_node,
            restriction_seed: self.restriction_seed,
            fetch_counts: Arc::new(Mutex::new(std::collections::HashMap::new())),
            restricted_cache: Arc::new(Mutex::new(std::collections::HashMap::new())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_graph::generators::classic::{complete, cycle, star};
    use wnw_graph::generators::random::barabasi_albert;

    #[test]
    fn neighbors_match_graph_and_are_charged_once() {
        let osn = SimulatedOsn::new(cycle(6));
        let n0 = osn.neighbors(NodeId(0)).unwrap();
        assert_eq!(n0, vec![NodeId(1), NodeId(5)]);
        assert_eq!(osn.query_cost(), 1);
        osn.neighbors(NodeId(0)).unwrap();
        assert_eq!(osn.query_cost(), 1); // cache hit
        osn.neighbors(NodeId(1)).unwrap();
        assert_eq!(osn.query_cost(), 2);
        assert_eq!(osn.query_stats().api_calls, 3);
    }

    #[test]
    fn unknown_node_is_rejected() {
        let osn = SimulatedOsn::new(cycle(3));
        assert_eq!(
            osn.neighbors(NodeId(9)).unwrap_err(),
            AccessError::UnknownNode(NodeId(9))
        );
        assert!(matches!(
            osn.attribute("stars", NodeId(9)),
            Err(AccessError::UnknownNode(_))
        ));
    }

    #[test]
    fn budget_is_enforced() {
        let osn = SimulatedOsn::builder(complete(10))
            .budget(QueryBudget(3))
            .build();
        osn.neighbors(NodeId(0)).unwrap();
        osn.neighbors(NodeId(1)).unwrap();
        osn.neighbors(NodeId(2)).unwrap();
        assert!(matches!(
            osn.neighbors(NodeId(3)),
            Err(AccessError::BudgetExhausted { budget: 3 })
        ));
        // Cached nodes remain readable.
        assert!(osn.neighbors(NodeId(0)).is_ok());
    }

    #[test]
    fn attribute_reads_work_and_do_not_charge() {
        let mut g = cycle(4);
        g.set_attribute("stars", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let osn = SimulatedOsn::new(g);
        assert_eq!(osn.attribute("stars", NodeId(2)).unwrap(), 3.0);
        assert_eq!(osn.query_cost(), 0);
        assert!(matches!(
            osn.attribute("missing", NodeId(2)),
            Err(AccessError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn truncated_restriction_applies_bidirectional_check() {
        // Star graph: hub 0 with leaves 1..=5. Truncate to 2 neighbors: the
        // hub only "sees" leaves 1 and 2; every leaf still sees the hub.
        let osn = SimulatedOsn::builder(star(6))
            .restriction(NeighborRestriction::Truncated { l: 2 })
            .build();
        let hub = osn.neighbors(NodeId(0)).unwrap();
        assert_eq!(hub, vec![NodeId(1), NodeId(2)]);
        let leaf = osn.neighbors(NodeId(3)).unwrap();
        // Leaf 3 sees the hub, and the hub's truncated list does not contain
        // 3, so the bidirectional check removes the edge.
        assert!(leaf.is_empty());
    }

    #[test]
    fn random_subset_restriction_bounds_list_size() {
        let g = barabasi_albert(100, 5, 3).unwrap();
        let osn = SimulatedOsn::builder(g)
            .restriction(NeighborRestriction::RandomSubset { k: 3 })
            .build();
        for v in [NodeId(0), NodeId(1), NodeId(2)] {
            assert!(osn.neighbors(v).unwrap().len() <= 3);
        }
    }

    #[test]
    fn reset_counters_clears_everything() {
        let osn = SimulatedOsn::new(cycle(5));
        osn.neighbors(NodeId(0)).unwrap();
        osn.reset_counters();
        assert_eq!(osn.query_cost(), 0);
        assert_eq!(osn.query_stats(), QueryStats::default());
    }

    #[test]
    fn clones_share_counters() {
        let osn = SimulatedOsn::new(cycle(5));
        let other = osn.clone();
        osn.neighbors(NodeId(0)).unwrap();
        other.neighbors(NodeId(1)).unwrap();
        assert_eq!(osn.query_cost(), 2);
        assert_eq!(other.query_cost(), 2);
    }

    #[test]
    fn seed_node_and_hint() {
        let osn = SimulatedOsn::builder(cycle(7)).seed_node(NodeId(3)).build();
        assert_eq!(osn.seed_node(), NodeId(3));
        assert_eq!(osn.node_count_hint(), Some(7));
    }
}
