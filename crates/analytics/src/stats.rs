//! Basic statistics used across the estimators and experiment harness.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance; 0.0 for slices with fewer than two elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Harmonic mean of strictly positive values; 0.0 for an empty slice or if
/// any value is ≤ 0 (the harmonic mean is undefined there, and the callers —
/// importance-weighted estimators — treat that as "no estimate").
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    let denom: f64 = values.iter().map(|v| 1.0 / v).sum();
    values.len() as f64 / denom
}

/// Weighted arithmetic mean `Σ wᵢ·xᵢ / Σ wᵢ`; 0.0 if the weights sum to 0.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(values.len(), weights.len(), "values and weights must align");
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return 0.0;
    }
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / wsum
}

/// The `pct`-th percentile (0–100) using nearest-rank interpolation on a
/// copy of the data; 0.0 for an empty slice.
pub fn percentile(values: &[f64], pct: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let pct = pct.clamp(0.0, 100.0);
    let idx = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// Mean and population variance in a single pass (Welford's algorithm),
/// handy for the ESTIMATE step's per-node variance bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (0.0 with no observations).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Current population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard error of the mean: `sqrt(variance / count)`.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.variance() / self.count as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn basic_statistics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), 2.5);
        assert!((variance(&v) - 1.25).abs() < 1e-12);
        assert!((std_dev(&v) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn harmonic_mean_known_values() {
        assert!((harmonic_mean(&[1.0, 2.0, 4.0]) - 12.0 / 7.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn weighted_mean_matches_manual() {
        assert!((weighted_mean(&[1.0, 3.0], &[1.0, 3.0]) - 2.5).abs() < 1e-12);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "values and weights must align")]
    fn weighted_mean_length_mismatch_panics() {
        weighted_mean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        let p10 = percentile(&v, 10.0);
        assert!((10.0..=12.0).contains(&p10));
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[f64::NAN], 50.0), 0.0);
    }

    #[test]
    fn running_stats_match_batch() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &v {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - mean(&v)).abs() < 1e-12);
        assert!((rs.variance() - variance(&v)).abs() < 1e-12);
        assert!(rs.standard_error() > 0.0);
        assert_eq!(RunningStats::new().mean(), 0.0);
        assert_eq!(RunningStats::new().standard_error(), 0.0);
    }

    /// Seeded randomized cases standing in for the former proptest block
    /// (the offline build has no proptest; the shrinking is lost, the
    /// coverage is kept).
    fn random_vec(
        rng: &mut StdRng,
        len_range: std::ops::Range<usize>,
        value_range: std::ops::Range<f64>,
    ) -> Vec<f64> {
        let len = rng.gen_range(len_range);
        (0..len)
            .map(|_| rng.gen_range(value_range.clone()))
            .collect()
    }

    #[test]
    fn prop_mean_within_bounds() {
        let mut rng = StdRng::seed_from_u64(0xA11);
        for _ in 0..64 {
            let values = random_vec(&mut rng, 1..200, -1e6..1e6);
            let m = mean(&values);
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(
                m >= lo - 1e-6 && m <= hi + 1e-6,
                "mean {m} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn prop_variance_nonnegative() {
        let mut rng = StdRng::seed_from_u64(0xA12);
        for _ in 0..64 {
            let values = random_vec(&mut rng, 0..200, -1e6..1e6);
            assert!(variance(&values) >= 0.0);
        }
    }

    #[test]
    fn prop_harmonic_le_arithmetic() {
        let mut rng = StdRng::seed_from_u64(0xA13);
        for _ in 0..64 {
            let values = random_vec(&mut rng, 1..100, 0.001..1e6);
            let h = harmonic_mean(&values);
            let a = mean(&values);
            assert!(
                h <= a + 1e-6 * a.abs().max(1.0),
                "harmonic {h} > arithmetic {a}"
            );
        }
    }

    #[test]
    fn prop_running_stats_match_batch() {
        let mut rng = StdRng::seed_from_u64(0xA14);
        for _ in 0..64 {
            let values = random_vec(&mut rng, 2..100, -1e3..1e3);
            let mut rs = RunningStats::new();
            for &v in &values {
                rs.push(v);
            }
            assert!((rs.mean() - mean(&values)).abs() < 1e-6);
            assert!((rs.variance() - variance(&values)).abs() < 1e-6);
        }
    }

    #[test]
    fn prop_percentile_is_an_observed_value() {
        let mut rng = StdRng::seed_from_u64(0xA15);
        for _ in 0..64 {
            let values = random_vec(&mut rng, 1..100, -1e3..1e3);
            let pct = rng.gen_range(0.0..100.0);
            let p = percentile(&values, pct);
            assert!(
                values.iter().any(|&v| (v - p).abs() < 1e-9),
                "{p} not an observed value"
            );
        }
    }
}
