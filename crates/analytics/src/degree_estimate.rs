//! Mark-and-recapture degree estimation (Section 6.3.1, restriction type 1).
//!
//! When the service returns only `k` *random* neighbors per call, the length
//! of one response no longer reveals a node's degree. The paper points out
//! that the degree can still be estimated with mark-and-recapture: query the
//! node twice, "mark" the first batch, count how many of the second batch are
//! recaptures, and apply the Lincoln–Petersen estimator
//!
//! ```text
//! d̂ = |batch₁| · |batch₂| / |batch₁ ∩ batch₂|
//! ```
//!
//! (with the Chapman correction to tame the small-sample bias). With more
//! than two batches the pairwise estimates are averaged.

use std::collections::HashSet;
use wnw_graph::NodeId;

/// Lincoln–Petersen estimate with the Chapman correction:
/// `d̂ = (n₁ + 1)(n₂ + 1)/(m + 1) − 1`, where `m` is the recapture count.
pub fn lincoln_petersen(batch1: &[NodeId], batch2: &[NodeId]) -> f64 {
    let set1: HashSet<NodeId> = batch1.iter().copied().collect();
    let recaptured = batch2.iter().filter(|v| set1.contains(v)).count();
    let n1 = set1.len() as f64;
    let n2 = batch2.iter().copied().collect::<HashSet<_>>().len() as f64;
    ((n1 + 1.0) * (n2 + 1.0) / (recaptured as f64 + 1.0)) - 1.0
}

/// Degree estimate from repeated invocations of a random-`k` neighbors API:
/// the mean of Lincoln–Petersen estimates over consecutive batch pairs.
/// Returns `None` with fewer than two batches.
pub fn estimate_degree_from_batches(batches: &[Vec<NodeId>]) -> Option<f64> {
    if batches.len() < 2 {
        return None;
    }
    let mut estimates = Vec::with_capacity(batches.len() - 1);
    for pair in batches.windows(2) {
        estimates.push(lincoln_petersen(&pair[0], &pair[1]));
    }
    Some(estimates.iter().sum::<f64>() / estimates.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn random_batch(degree: u32, k: usize, rng: &mut StdRng) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = (0..degree).map(NodeId).collect();
        all.shuffle(rng);
        all.truncate(k);
        all
    }

    #[test]
    fn identical_batches_estimate_their_own_size() {
        let batch: Vec<NodeId> = (0..10).map(NodeId).collect();
        let est = lincoln_petersen(&batch, &batch);
        assert!((est - 10.0).abs() < 1.0, "{est}");
    }

    #[test]
    fn disjoint_batches_imply_a_large_population() {
        let b1: Vec<NodeId> = (0..10).map(NodeId).collect();
        let b2: Vec<NodeId> = (10..20).map(NodeId).collect();
        let est = lincoln_petersen(&b1, &b2);
        assert!(est > 50.0, "{est}");
    }

    #[test]
    fn recaptures_recover_true_degree_approximately() {
        let mut rng = StdRng::seed_from_u64(5);
        let degree = 200u32;
        let k = 60;
        let batches: Vec<Vec<NodeId>> =
            (0..30).map(|_| random_batch(degree, k, &mut rng)).collect();
        let est = estimate_degree_from_batches(&batches).unwrap();
        let rel = (est - degree as f64).abs() / degree as f64;
        assert!(rel < 0.15, "estimate {est} vs {degree}");
    }

    #[test]
    fn too_few_batches_yield_none() {
        assert!(estimate_degree_from_batches(&[]).is_none());
        assert!(estimate_degree_from_batches(&[vec![NodeId(0)]]).is_none());
    }

    #[test]
    fn small_k_still_produces_finite_estimates() {
        let mut rng = StdRng::seed_from_u64(6);
        let batches: Vec<Vec<NodeId>> = (0..5).map(|_| random_batch(50, 3, &mut rng)).collect();
        let est = estimate_degree_from_batches(&batches).unwrap();
        assert!(est.is_finite() && est > 0.0);
    }
}
