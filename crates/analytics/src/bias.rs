//! Exact sample-bias measurement (Figure 12 / Table 1).
//!
//! Sample bias is the distance between the *actual* sampling distribution of
//! an algorithm and its target distribution. Measuring it exactly requires
//! sampling each node many times, so the paper does it only on a small
//! 1000-node scale-free graph: run the sampler with a huge budget, count how
//! often each node appears, and compare the empirical distribution against
//! the theoretical target with ℓ∞ and KL divergence (Table 1), plus
//! degree-ordered PDF/CDF plots (Figure 12).

use wnw_graph::{Graph, NodeId};

/// An empirical sampling distribution built from repeated draws.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDistribution {
    counts: Vec<u64>,
    total: u64,
}

impl EmpiricalDistribution {
    /// Creates an empty distribution over `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        EmpiricalDistribution {
            counts: vec![0; node_count],
            total: 0,
        }
    }

    /// Builds a distribution directly from a list of sampled nodes.
    pub fn from_samples(node_count: usize, samples: &[NodeId]) -> Self {
        let mut d = Self::new(node_count);
        for &s in samples {
            d.record(s);
        }
        d
    }

    /// Records one draw of node `v`.
    pub fn record(&mut self, v: NodeId) {
        self.counts[v.index()] += 1;
        self.total += 1;
    }

    /// Number of draws recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of nodes that were never sampled.
    pub fn unseen_nodes(&self) -> usize {
        self.counts.iter().filter(|&&c| c == 0).count()
    }

    /// The empirical probability of node `v`.
    pub fn probability(&self, v: NodeId) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[v.index()] as f64 / self.total as f64
        }
    }

    /// The full probability vector.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// ℓ∞ distance against a target probability vector.
    pub fn linf_distance(&self, target: &[f64]) -> f64 {
        assert_eq!(target.len(), self.counts.len());
        self.probabilities()
            .iter()
            .zip(target)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max)
    }

    /// Total-variation distance against a target probability vector.
    pub fn total_variation_distance(&self, target: &[f64]) -> f64 {
        assert_eq!(target.len(), self.counts.len());
        0.5 * self
            .probabilities()
            .iter()
            .zip(target)
            .map(|(p, q)| (p - q).abs())
            .sum::<f64>()
    }

    /// KL divergence `KL(target ‖ empirical)`, matching the direction the
    /// paper reports ("Dist(Theoretical, SRW/WE)"): how badly the empirical
    /// distribution explains the target. The empirical side is floored at
    /// `1e-12` so never-sampled nodes yield a large-but-finite penalty.
    pub fn kl_from_target(&self, target: &[f64]) -> f64 {
        assert_eq!(target.len(), self.counts.len());
        let emp = self.probabilities();
        target
            .iter()
            .zip(&emp)
            .filter(|(&t, _)| t > 0.0)
            .map(|(&t, &e)| t * (t / e.max(1e-12)).ln())
            .sum()
    }
}

/// One point of the degree-ordered PDF/CDF series of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionPoint {
    /// Rank of the node when ordered by degree, descending (0 = highest).
    pub rank: usize,
    /// The node id.
    pub node: NodeId,
    /// Node degree (the ordering key).
    pub degree: usize,
    /// Probability density at this node.
    pub pdf: f64,
    /// Cumulative probability up to and including this node.
    pub cdf: f64,
}

/// Produces the Figure 12 series: nodes ordered by degree (descending), each
/// with the PDF and CDF of the given probability vector.
pub fn degree_ordered_series(graph: &Graph, probabilities: &[f64]) -> Vec<DistributionPoint> {
    assert_eq!(probabilities.len(), graph.node_count());
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by(|&a, &b| {
        graph
            .degree(b)
            .cmp(&graph.degree(a))
            .then_with(|| a.cmp(&b))
    });
    let mut cdf = 0.0;
    order
        .into_iter()
        .enumerate()
        .map(|(rank, node)| {
            let pdf = probabilities[node.index()];
            cdf += pdf;
            DistributionPoint {
                rank,
                node,
                degree: graph.degree(node),
                pdf,
                cdf,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wnw_graph::generators::classic::star;
    use wnw_graph::generators::random::barabasi_albert;

    #[test]
    fn counting_and_probabilities() {
        let mut d = EmpiricalDistribution::new(3);
        d.record(NodeId(0));
        d.record(NodeId(0));
        d.record(NodeId(2));
        assert_eq!(d.total(), 3);
        assert_eq!(d.unseen_nodes(), 1);
        assert!((d.probability(NodeId(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.probability(NodeId(1)), 0.0);
        assert!((d.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_samples_matches_manual_recording() {
        let samples = vec![NodeId(1), NodeId(1), NodeId(0)];
        let d = EmpiricalDistribution::from_samples(2, &samples);
        assert_eq!(d.total(), 3);
        assert!((d.probability(NodeId(1)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distances_against_exact_match_are_zero() {
        let mut d = EmpiricalDistribution::new(2);
        d.record(NodeId(0));
        d.record(NodeId(1));
        let target = [0.5, 0.5];
        assert!(d.linf_distance(&target) < 1e-12);
        assert!(d.total_variation_distance(&target) < 1e-12);
        assert!(d.kl_from_target(&target) < 1e-12);
    }

    #[test]
    fn kl_penalises_unseen_nodes_but_stays_finite() {
        let mut d = EmpiricalDistribution::new(2);
        d.record(NodeId(0)); // node 1 never sampled
        let target = [0.5, 0.5];
        let kl = d.kl_from_target(&target);
        assert!(kl > 1.0);
        assert!(kl.is_finite());
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let d = EmpiricalDistribution::new(4);
        assert_eq!(d.probabilities(), vec![0.0; 4]);
        assert_eq!(d.unseen_nodes(), 4);
        assert_eq!(d.probability(NodeId(2)), 0.0);
    }

    #[test]
    fn degree_ordered_series_sorts_and_accumulates() {
        let g = star(4); // node 0 degree 3, leaves degree 1
        let probs = [0.4, 0.3, 0.2, 0.1];
        let series = degree_ordered_series(&g, &probs);
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].node, NodeId(0));
        assert_eq!(series[0].degree, 3);
        assert!((series[3].cdf - 1.0).abs() < 1e-12);
        for w in series.windows(2) {
            assert!(w[0].degree >= w[1].degree);
            assert!(w[1].cdf >= w[0].cdf);
        }
    }

    /// Seeded randomized node-sample vectors, standing in for the former
    /// proptest strategies in the offline build.
    fn random_samples(rng: &mut StdRng, universe: u32, max_len: usize) -> Vec<NodeId> {
        let len = rng.gen_range(1..max_len);
        (0..len)
            .map(|_| NodeId(rng.gen_range(0..universe)))
            .collect()
    }

    #[test]
    fn prop_probabilities_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(0xB1A);
        for _ in 0..64 {
            let nodes = random_samples(&mut rng, 20, 300);
            let d = EmpiricalDistribution::from_samples(20, &nodes);
            let sum: f64 = d.probabilities().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "probabilities sum to {sum}");
        }
    }

    #[test]
    fn prop_tv_le_linf_times_n() {
        let mut rng = StdRng::seed_from_u64(0xB1B);
        for _ in 0..64 {
            let nodes = random_samples(&mut rng, 10, 200);
            let d = EmpiricalDistribution::from_samples(10, &nodes);
            let target = vec![0.1; 10];
            let tv = d.total_variation_distance(&target);
            let linf = d.linf_distance(&target);
            assert!(tv <= 10.0 * linf + 1e-9);
            assert!(linf <= 2.0 * tv + 1e-9);
            assert!(d.kl_from_target(&target) >= -1e-9);
        }
    }

    #[test]
    fn series_on_ba_graph_has_descending_degree() {
        let g = barabasi_albert(100, 3, 1).unwrap();
        let pi: Vec<f64> = {
            let total = 2.0 * g.edge_count() as f64;
            g.nodes().map(|v| g.degree(v) as f64 / total).collect()
        };
        let series = degree_ordered_series(&g, &pi);
        // Under the degree-proportional distribution the PDF must also be
        // non-increasing along the series.
        for w in series.windows(2) {
            assert!(w[0].pdf >= w[1].pdf - 1e-12);
        }
    }
}
