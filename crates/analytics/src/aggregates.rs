//! AVG-aggregate estimation from node samples.
//!
//! The paper measures sample quality indirectly: use the sample to estimate
//! an AVG aggregate (average degree, average stars, average shortest-path
//! length, average clustering coefficient, average self-description length)
//! and report the relative error against the exact population value
//! (Sections 2.4 and 7.1). Two weighting schemes are needed:
//!
//! * **uniform samples** (MHRW target, or WE targeting uniform) — the plain
//!   arithmetic mean is unbiased;
//! * **degree-proportional samples** (SRW target, or WE targeting SRW's
//!   stationary distribution) — each observation must be re-weighted by
//!   `1/d(v)`; for the special case of estimating the *average degree* this
//!   collapses to the harmonic mean of sampled degrees, which is exactly what
//!   the paper uses ("arithmetic and harmonic mean for the uniform and
//!   non-uniform samples respectively").

use crate::stats;
use wnw_graph::NodeId;

/// One sampled node together with the measured attribute value and the
/// node's degree (needed for importance re-weighting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleValue {
    /// The sampled node.
    pub node: NodeId,
    /// The attribute value measured at the node (its degree, star rating,
    /// clustering coefficient, ...).
    pub value: f64,
    /// The node's degree, used as the sampling weight under
    /// degree-proportional sampling.
    pub degree: usize,
}

/// How sampled values must be weighted to form an unbiased population mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightingScheme {
    /// Samples were drawn (approximately) uniformly: plain arithmetic mean.
    Uniform,
    /// Samples were drawn with probability proportional to degree:
    /// re-weight each observation by `1/degree` (Hansen–Hurwitz style
    /// self-normalised importance sampling).
    InverseDegree,
}

impl WeightingScheme {
    /// The scheme matching a sampler's target distribution name, as used by
    /// the experiment harness ("uniform" / "degree-proportional").
    pub fn for_target_name(name: &str) -> WeightingScheme {
        if name == "uniform" {
            WeightingScheme::Uniform
        } else {
            WeightingScheme::InverseDegree
        }
    }
}

/// Estimates the population mean of the measured attribute from samples.
///
/// Returns 0.0 when no usable samples are provided (callers treat that as
/// "no estimate yet"). Samples with degree 0 cannot occur under either
/// sampling design on a connected graph and are skipped defensively.
pub fn estimate_average(samples: &[SampleValue], scheme: WeightingScheme) -> f64 {
    match scheme {
        WeightingScheme::Uniform => {
            let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
            stats::mean(&values)
        }
        WeightingScheme::InverseDegree => {
            let mut num = 0.0;
            let mut den = 0.0;
            for s in samples {
                if s.degree == 0 {
                    continue;
                }
                let w = 1.0 / s.degree as f64;
                num += w * s.value;
                den += w;
            }
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        }
    }
}

/// Convenience: estimate the average *degree* itself. Under
/// [`WeightingScheme::InverseDegree`] this is the harmonic mean of sampled
/// degrees, matching the paper's estimator for SRW samples.
pub fn estimate_average_degree(samples: &[SampleValue], scheme: WeightingScheme) -> f64 {
    match scheme {
        WeightingScheme::Uniform => {
            let degrees: Vec<f64> = samples.iter().map(|s| s.degree as f64).collect();
            stats::mean(&degrees)
        }
        WeightingScheme::InverseDegree => {
            let degrees: Vec<f64> = samples.iter().map(|s| s.degree as f64).collect();
            stats::harmonic_mean(&degrees)
        }
    }
}

/// Relative error `|estimate − truth| / truth` (Section 7.1). Returns the
/// absolute error if the truth is 0.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth.abs() < f64::EPSILON {
        estimate.abs()
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sv(node: u32, value: f64, degree: usize) -> SampleValue {
        SampleValue {
            node: NodeId(node),
            value,
            degree,
        }
    }

    #[test]
    fn uniform_scheme_is_arithmetic_mean() {
        let samples = [sv(0, 2.0, 5), sv(1, 4.0, 1), sv(2, 6.0, 9)];
        assert_eq!(estimate_average(&samples, WeightingScheme::Uniform), 4.0);
    }

    #[test]
    fn inverse_degree_scheme_reweights() {
        // Two nodes with values 10 and 20, degrees 1 and 4: weights 1 and
        // 0.25 => (10 + 5) / 1.25 = 12.
        let samples = [sv(0, 10.0, 1), sv(1, 20.0, 4)];
        assert!((estimate_average(&samples, WeightingScheme::InverseDegree) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn average_degree_is_harmonic_mean_under_srw() {
        let samples = [sv(0, 0.0, 1), sv(1, 0.0, 2), sv(2, 0.0, 4)];
        let expected = 3.0 / (1.0 + 0.5 + 0.25);
        assert!(
            (estimate_average_degree(&samples, WeightingScheme::InverseDegree) - expected).abs()
                < 1e-12
        );
        assert!(
            (estimate_average_degree(&samples, WeightingScheme::Uniform) - (7.0 / 3.0)).abs()
                < 1e-12
        );
    }

    #[test]
    fn empty_or_degenerate_samples_yield_zero() {
        assert_eq!(estimate_average(&[], WeightingScheme::Uniform), 0.0);
        assert_eq!(estimate_average(&[], WeightingScheme::InverseDegree), 0.0);
        assert_eq!(
            estimate_average(&[sv(0, 5.0, 0)], WeightingScheme::InverseDegree),
            0.0
        );
    }

    #[test]
    fn relative_error_behaviour() {
        assert_eq!(relative_error(11.0, 10.0), 0.1);
        assert_eq!(relative_error(9.0, 10.0), 0.1);
        assert_eq!(relative_error(3.0, 0.0), 3.0);
        assert_eq!(relative_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn weighting_scheme_from_target_name() {
        assert_eq!(
            WeightingScheme::for_target_name("uniform"),
            WeightingScheme::Uniform
        );
        assert_eq!(
            WeightingScheme::for_target_name("degree-proportional"),
            WeightingScheme::InverseDegree
        );
    }

    #[test]
    fn importance_weighting_corrects_degree_bias() {
        // Population: degrees 1..=10, attribute = degree. Draw 60k samples
        // with probability proportional to degree; the inverse-degree
        // estimator must recover the plain average 5.5 while the naive mean
        // overestimates it.
        let degrees: Vec<usize> = (1..=10).collect();
        let total: usize = degrees.iter().sum();
        let mut rng = StdRng::seed_from_u64(99);
        let mut samples = Vec::new();
        for _ in 0..60_000 {
            let mut pick = rng.gen_range(0..total);
            let mut chosen = degrees[0];
            for &d in &degrees {
                if pick < d {
                    chosen = d;
                    break;
                }
                pick -= d;
            }
            samples.push(sv(chosen as u32, chosen as f64, chosen));
        }
        let naive = estimate_average(&samples, WeightingScheme::Uniform);
        let corrected = estimate_average(&samples, WeightingScheme::InverseDegree);
        assert!(
            relative_error(corrected, 5.5) < 0.05,
            "corrected {corrected}"
        );
        assert!(
            naive > 6.0,
            "naive mean should over-count high degrees: {naive}"
        );
    }

    #[test]
    fn prop_uniform_estimate_is_bounded_by_sample_values() {
        let mut rng = StdRng::seed_from_u64(0xC1A);
        for _ in 0..64 {
            let len = rng.gen_range(1..50usize);
            let values: Vec<f64> = (0..len).map(|_| rng.gen_range(0.0..1e3)).collect();
            let samples: Vec<SampleValue> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| sv(i as u32, v, 3))
                .collect();
            let est = estimate_average(&samples, WeightingScheme::Uniform);
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
        }
    }

    #[test]
    fn prop_inverse_degree_estimate_is_bounded_by_sample_values() {
        let mut rng = StdRng::seed_from_u64(0xC1B);
        for _ in 0..64 {
            let len = rng.gen_range(1..50usize);
            let pairs: Vec<(f64, usize)> = (0..len)
                .map(|_| (rng.gen_range(0.0..1e3), rng.gen_range(1..100usize)))
                .collect();
            let samples: Vec<SampleValue> = pairs
                .iter()
                .enumerate()
                .map(|(i, &(v, d))| sv(i as u32, v, d))
                .collect();
            let est = estimate_average(&samples, WeightingScheme::InverseDegree);
            let lo = pairs.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
            let hi = pairs.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
            assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
        }
    }

    #[test]
    fn prop_relative_error_nonnegative() {
        let mut rng = StdRng::seed_from_u64(0xC1C);
        for _ in 0..256 {
            let est = rng.gen_range(-1e6..1e6);
            let truth = rng.gen_range(-1e6..1e6);
            assert!(relative_error(est, truth) >= 0.0);
        }
    }
}
