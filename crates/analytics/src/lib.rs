//! # wnw-analytics
//!
//! Numerics and analytics for the reproduction of *"Walk, Not Wait"*
//! (Nazi et al., VLDB 2015).
//!
//! * [`numeric`] — the Lambert W function (both real branches) needed by
//!   Theorem 1's optimal walk length `t_opt`, plus small numeric helpers;
//! * [`stats`] — means, variances, percentiles, harmonic means, and
//!   weighted statistics used across the estimators;
//! * [`aggregates`] — AVG-aggregate estimation from node samples: the plain
//!   arithmetic mean for uniform samples and importance-weighted (harmonic /
//!   Hansen–Hurwitz style) estimators for degree-proportional samples,
//!   together with relative-error computation (Section 2.4 / 7.1);
//! * [`bias`] — exact sample-bias measurement on small graphs: empirical
//!   sampling distributions from repeated runs, ℓ∞ / total-variation / KL
//!   distances against the target, and the degree-ordered PDF/CDF series of
//!   Figure 12 / Table 1;
//! * [`degree_estimate`] — mark-and-recapture degree estimation for access
//!   restriction type 1 (Section 6.3.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod bias;
pub mod degree_estimate;
pub mod numeric;
pub mod stats;

pub use aggregates::{estimate_average, relative_error, SampleValue, WeightingScheme};
pub use bias::EmpiricalDistribution;
pub use numeric::{lambert_w0, lambert_w_minus1};
pub use stats::{harmonic_mean, mean, percentile, std_dev, variance};
