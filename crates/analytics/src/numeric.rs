//! Numeric special functions.
//!
//! Theorem 1 of the paper expresses the optimal short-walk length as
//!
//! ```text
//! t_opt = −log(−(1/Γ)·W(−Γ/(e·d_max))·d_max) / log(1 − λ)
//! ```
//!
//! where `W` is the Lambert W function. The argument `−Γ/(e·d_max)` lies in
//! `(−1/e, 0)`, where W is two-valued: the principal branch `W₀` in `[−1, 0)`
//! and the lower branch `W₋₁` in `(−∞, −1]`. Both are provided; the IDEAL-WALK
//! analysis in `wnw-core` picks the branch that yields the cost-minimising
//! (and positive) walk length.
//!
//! The implementation uses a standard initial guess followed by Halley
//! iteration, accurate to ~1e-12 over the domains used here, with no external
//! dependencies.

/// Principal branch `W₀(x)` of the Lambert W function, defined for
/// `x ≥ −1/e`. Returns `NaN` outside the domain.
pub fn lambert_w0(x: f64) -> f64 {
    if x.is_nan() || x < -1.0 / std::f64::consts::E {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    // Initial guess by region: branch-point series for negative x, a
    // logarithmic guess for moderate x, and the two-term asymptotic for
    // large x (where ln(ln(x)) is well defined and accurate).
    let mut w = if x < 0.0 {
        let p = (2.0 * (1.0 + std::f64::consts::E * x)).max(0.0).sqrt();
        -1.0 + p - p * p / 3.0 + 11.0 * p * p * p / 72.0
    } else if x < 10.0 {
        (1.0 + x).ln()
    } else {
        let l1 = x.ln();
        let l2 = l1.ln();
        l1 - l2 + l2 / l1
    };
    halley(x, &mut w);
    w
}

/// Lower branch `W₋₁(x)` of the Lambert W function, defined for
/// `x ∈ [−1/e, 0)`. Returns `NaN` outside the domain.
pub fn lambert_w_minus1(x: f64) -> f64 {
    if x.is_nan() || !(-1.0 / std::f64::consts::E..0.0).contains(&x) {
        return f64::NAN;
    }
    // Initial guess: near the branch point use the same series with the
    // negative square root; elsewhere use log-based asymptotics.
    let p = (2.0 * (1.0 + std::f64::consts::E * x)).max(0.0).sqrt();
    let mut w = if p < 0.5 {
        -1.0 - p - p * p / 3.0 - 11.0 * p * p * p / 72.0
    } else {
        let l1 = (-x).ln();
        let l2 = (-l1).ln();
        l1 - l2 + l2 / l1
    };
    halley(x, &mut w);
    w
}

/// Halley iteration for `w·e^w = x`.
fn halley(x: f64, w: &mut f64) {
    for _ in 0..60 {
        let ew = w.exp();
        let f = *w * ew - x;
        if f.abs() < 1e-14 * (1.0 + x.abs()) {
            break;
        }
        let wp1 = *w + 1.0;
        let denom = ew * wp1 - (*w + 2.0) * f / (2.0 * wp1);
        if denom == 0.0 || !denom.is_finite() {
            break;
        }
        let delta = f / denom;
        *w -= delta;
        if delta.abs() < 1e-15 * (1.0 + w.abs()) {
            break;
        }
    }
}

/// Numerically stable `log(1 + x)`-style helper: `log(x)` clamped so callers
/// can take logs of probabilities that might round to exactly 0.
pub fn safe_ln(x: f64, floor: f64) -> f64 {
    x.max(floor).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::E;

    fn check_inverse(w: f64, x: f64) {
        assert!(
            (w * w.exp() - x).abs() < 1e-9,
            "W({x}) = {w}: residual {}",
            w * w.exp() - x
        );
    }

    #[test]
    fn principal_branch_known_values() {
        assert_eq!(lambert_w0(0.0), 0.0);
        assert!((lambert_w0(E) - 1.0).abs() < 1e-12);
        assert!((lambert_w0(1.0) - 0.567_143_290_409_78).abs() < 1e-9);
        assert!((lambert_w0(-1.0 / E) - (-1.0)).abs() < 1e-5);
        for &x in &[-0.3, -0.1, -0.01, 0.5, 2.0, 10.0, 1e3, 1e6] {
            check_inverse(lambert_w0(x), x);
        }
    }

    #[test]
    fn lower_branch_known_values() {
        // W₋₁(−1/e) = −1.
        assert!((lambert_w_minus1(-1.0 / E) - (-1.0)).abs() < 1e-5);
        // W₋₁(−0.1) ≈ −3.577152.
        assert!((lambert_w_minus1(-0.1) - (-3.577_152_063_957_297)).abs() < 1e-8);
        for &x in &[-0.367, -0.3, -0.2, -0.05, -1e-3, -1e-6] {
            let w = lambert_w_minus1(x);
            assert!(w <= -1.0);
            check_inverse(w, x);
        }
    }

    #[test]
    fn branches_bracket_the_branch_point() {
        // On (−1/e, 0): W₀ ∈ (−1, 0) and W₋₁ < −1.
        for &x in &[-0.35, -0.2, -0.05] {
            let w0 = lambert_w0(x);
            let wm1 = lambert_w_minus1(x);
            assert!(w0 > -1.0 && w0 < 0.0, "W0({x}) = {w0}");
            assert!(wm1 < -1.0, "Wm1({x}) = {wm1}");
        }
    }

    #[test]
    fn out_of_domain_is_nan() {
        assert!(lambert_w0(-1.0).is_nan());
        assert!(lambert_w_minus1(0.5).is_nan());
        assert!(lambert_w_minus1(-1.0).is_nan());
        assert!(lambert_w0(f64::NAN).is_nan());
    }

    #[test]
    fn safe_ln_floors() {
        assert_eq!(safe_ln(0.0, 1e-12), (1e-12f64).ln());
        assert_eq!(safe_ln(2.0, 1e-12), 2.0f64.ln());
    }
}
